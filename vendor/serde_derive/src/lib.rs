//! `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Parses the item with the bare `proc_macro` API (no `syn`/`quote`; the
//! registry is offline) and emits an `impl serde::Serialize` that writes
//! compact JSON. Supported shapes — the only ones this workspace derives:
//!
//! * structs with named fields        -> JSON object
//! * newtype structs `struct T(U);`   -> inner value (serde's convention)
//! * tuple structs with >1 field      -> JSON array
//! * enums with unit variants only    -> the variant name as a string
//!
//! Generic items and `#[serde(...)]` attributes are not supported and fail
//! loudly rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(src) => src.parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    // Skip outer attributes and visibility to find `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => return Err("derive(Serialize): no struct/enum found".into()),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize): missing item name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) shim does not support generics on `{name}`"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            // Tuple struct: count top-level comma-separated fields.
            let n = count_top_level_fields(g.stream());
            return Ok(tuple_struct_impl(&name, n));
        }
        _ => {
            return Err(format!(
                "derive(Serialize): unsupported shape for `{name}` (unit struct?)"
            ))
        }
    };

    if kind == "enum" {
        let variants = parse_unit_variants(body, &name)?;
        Ok(enum_impl(&name, &variants))
    } else {
        let fields = parse_named_fields(body);
        Ok(struct_impl(&name, &fields))
    }
}

/// Number of fields in a tuple-struct body `(A, B, ...)`.
fn count_top_level_fields(ts: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

/// Field names of a named-field struct body, skipping attributes,
/// visibility, and the (arbitrarily complex) type after each `:`.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes: `#` followed by a bracket group.
        if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
            continue;
        }
        // Skip visibility: `pub` (+ optional `(...)`).
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
            continue;
        }
        // Now: `name : Type ,` — record name, then skip to the next
        // top-level comma.
        if let TokenTree::Ident(id) = &tokens[i] {
            fields.push(id.to_string());
            let mut depth = 0usize;
            i += 1;
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    fields
}

/// Variant names of a unit-variant-only enum; rejects payload variants.
fn parse_unit_variants(ts: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut expect_name = true;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {}
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {}
            TokenTree::Ident(id) if expect_name => {
                variants.push(id.to_string());
                expect_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expect_name = true,
            TokenTree::Group(_) => {
                return Err(format!(
                    "derive(Serialize) shim: enum `{enum_name}` has a payload variant; \
                     implement Serialize by hand"
                ))
            }
            TokenTree::Punct(p) if p.as_char() == '=' => {
                return Err(format!(
                    "derive(Serialize) shim: enum `{enum_name}` has explicit discriminants"
                ))
            }
            _ => {}
        }
    }
    Ok(variants)
}

fn struct_impl(name: &str, fields: &[String]) -> String {
    let mut body = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::json_into(&self.{f}, out);\n"
        ));
    }
    body.push_str("out.push('}');");
    wrap_impl(name, &body)
}

fn tuple_struct_impl(name: &str, n: usize) -> String {
    let body = match n {
        0 => "out.push_str(\"null\");".to_string(),
        1 => "::serde::Serialize::json_into(&self.0, out);".to_string(),
        n => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("::serde::Serialize::json_into(&self.{i}, out);\n"));
            }
            b.push_str("out.push(']');");
            b
        }
    };
    wrap_impl(name, &body)
}

fn enum_impl(name: &str, variants: &[String]) -> String {
    let mut body = String::from("let s = match self {\n");
    for v in variants {
        body.push_str(&format!("{name}::{v} => \"\\\"{v}\\\"\",\n"));
    }
    body.push_str("};\nout.push_str(s);");
    wrap_impl(name, &body)
}

fn wrap_impl(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn json_into(&self, out: &mut String) {{\n{body}\n}}\n}}"
    )
}
