//! The calendar + slab scheduler core shared by [`crate::World`] (the
//! `Rc`-based serial world) and [`crate::shard::ShardWorld`] (the
//! `Send` parallel lane engine).
//!
//! Everything here is generic over the stored closure types `O`
//! (one-shot) and `M` (re-armable timer), so the same calendar code —
//! timer wheel, legacy heap, and the per-lane sharded merge — executes
//! identically whether the callbacks capture `Rc`s on one thread or are
//! `Send` closures running inside a shard lane. The structure is a plain
//! `&mut self` state machine: virtual-clock and sequence-number policy
//! stay with the owner (`World` keeps them in `Cell`s, a lane keeps them
//! as plain fields), which is what lets lane state satisfy the S1
//! `non-send-shard-state` lint with no interior mutability at all.
//!
//! # Calendar layout (DESIGN.md §3)
//!
//! Pending events are 24-byte `(at, seq, slot, gen)` keys held in one of
//! three places:
//!
//! * **current** — a small binary heap of every key whose bucket the wheel
//!   cursor has reached. Pops come only from here.
//! * **near wheel** — `WHEEL_SLOTS` unsorted `Vec` buckets, each covering
//!   `BUCKET_NS` nanoseconds (horizon ≈ 1 ms: where keepalive, DCQCN and
//!   retransmit timers live). Scheduling into the horizon is a `Vec::push`.
//! * **overflow** — a binary min-heap for keys beyond the horizon; they
//!   migrate into the wheel as the cursor advances.
//!
//! The FIFO-at-equal-instant proof obligation: every key is ordered by
//! `(at, seq)` and `seq` is globally unique and monotone, so the pop order
//! is correct iff `min(current) ≤ min(wheel ∪ overflow)` whenever `current`
//! is non-empty. That invariant holds because (a) `current` only receives
//! whole buckets the cursor has reached plus direct inserts at or behind
//! the cursor, (b) every bucket holds keys of exactly one future cursor
//! tick, and (c) the overflow heap only holds keys at least one full
//! rotation ahead of the cursor (re-established by the migration loop each
//! time the cursor moves). Callbacks therefore fire in exactly the order
//! the old single-heap calendar produced, byte-for-byte.
//!
//! [`Kernel::Sharded`] splits the key stream across `lanes` independent
//! wheels (assignment by `seq % lanes`) and pops the argmin by
//! `(at, seq)` — provably the same global order, exercising the
//! cross-lane merge rule on the full `Rc` stack so goldens validate it.
//!
//! Cancellation never searches the calendar: each slab slot carries a
//! generation counter, a key is live iff its generation matches, and stale
//! keys are discarded when popped.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

use crate::time::{Dur, Time};

/// log2 of the span one near-wheel bucket covers (4096 ns).
pub(crate) const BUCKET_BITS: u32 = 12;
/// Nanoseconds per near-wheel bucket.
pub(crate) const BUCKET_NS: u64 = 1 << BUCKET_BITS;
/// Number of near-wheel buckets; horizon = `WHEEL_SLOTS * BUCKET_NS` ≈ 1 ms.
pub(crate) const WHEEL_SLOTS: usize = 256;
/// High bit of `Key::slot`: set for timer slots, clear for one-shot events.
pub(crate) const TIMER_BIT: u32 = 1 << 31;

/// Handle to a scheduled one-shot event, usable to cancel it before it
/// fires.
///
/// The id encodes `(slot, generation)`; slots are recycled but generations
/// make every id logically unique, so cancelling an already-fired or
/// already-cancelled event is a harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    pub(crate) fn pack(slot: u32, gen: u32) -> EventId {
        EventId(((slot as u64) << 32) | gen as u64)
    }

    pub(crate) fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// Which calendar implementation a scheduler runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Kernel {
    /// Timer-wheel calendar (the production kernel).
    #[default]
    Wheel,
    /// The pre-wheel reference calendar: one global binary heap plus a
    /// `HashSet` tombstone probed on every pop. Kept only so differential
    /// tests can prove both kernels produce identical event orders and so
    /// `simperf` can measure the speedup against a live baseline.
    Legacy,
    /// `lanes` independent timer wheels (assignment by `seq % lanes`)
    /// popped in global `(at, seq)` order — the serial validation mode for
    /// the sharded lane engine's merge rule. Same event order as `Wheel`,
    /// byte for byte, on any workload; `lanes == 1` is exactly `Wheel`.
    Sharded { lanes: usize },
}

impl Kernel {
    /// The kernel [`crate::World::new`] boots: `Wheel`, unless the
    /// `XRDMA_SHARDS` environment variable names a lane count > 1 — the
    /// hook `scripts/ci.sh` uses to run the whole tier-1 suite on the
    /// sharded calendar (`XRDMA_SHARDS=4 cargo test`).
    pub fn from_env() -> Kernel {
        match std::env::var("XRDMA_SHARDS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 1 => Kernel::Sharded { lanes: n },
                _ => Kernel::Wheel,
            },
            Err(_) => Kernel::Wheel,
        }
    }
}

/// A calendar entry: everything needed to order and validate one firing.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Key {
    pub(crate) at: Time,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

// Total order by (at, seq): seq is unique, so same-instant keys fire in
// insertion (FIFO) order. That guarantee is what makes whole-world runs
// reproducible.
impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[inline]
fn tick_of(at: Time) -> u64 {
    at.0 / BUCKET_NS
}

/// Timer-wheel calendar state.
pub(crate) struct WheelCal {
    /// The bucket tick the cursor last drained; `current` holds every key
    /// at or behind it.
    cursor: u64,
    /// Keys the cursor has reached, popped in `(at, seq)` order.
    current: BinaryHeap<Reverse<Key>>,
    /// Near future: bucket `t % WHEEL_SLOTS` holds exactly the keys of the
    /// single tick `t` that is the bucket's next cursor visit.
    buckets: Vec<Vec<Key>>,
    /// Number of keys across all `buckets` (not counting `current`).
    in_buckets: usize,
    /// Keys at least one full rotation ahead of the cursor.
    overflow: BinaryHeap<Reverse<Key>>,
}

impl WheelCal {
    pub(crate) fn new() -> WheelCal {
        WheelCal {
            cursor: 0,
            current: BinaryHeap::with_capacity(64),
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            in_buckets: 0,
            overflow: BinaryHeap::new(),
        }
    }

    pub(crate) fn push(&mut self, key: Key) {
        let t = tick_of(key.at);
        if t <= self.cursor {
            self.current.push(Reverse(key));
        } else if t - self.cursor < WHEEL_SLOTS as u64 {
            self.buckets[(t % WHEEL_SLOTS as u64) as usize].push(key);
            self.in_buckets += 1;
        } else {
            self.overflow.push(Reverse(key));
        }
    }

    /// Advance the cursor until `current` is non-empty. Returns false when
    /// the calendar holds no keys at all.
    fn refill(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        loop {
            if self.in_buckets == 0 {
                // Everything pending (if anything) is in overflow: jump the
                // cursor straight to the earliest overflow tick.
                match self.overflow.peek() {
                    None => return false,
                    Some(Reverse(k)) => self.cursor = self.cursor.max(tick_of(k.at)),
                }
            } else {
                self.cursor += 1;
            }
            // Overflow keys now within one rotation of the cursor move into
            // the wheel (or straight to current when their tick is due).
            while let Some(Reverse(k)) = self.overflow.peek() {
                let t = tick_of(k.at);
                if t <= self.cursor {
                    let Reverse(k) = self.overflow.pop().expect("peeked");
                    self.current.push(Reverse(k));
                } else if t - self.cursor < WHEEL_SLOTS as u64 {
                    let Reverse(k) = self.overflow.pop().expect("peeked");
                    self.buckets[(t % WHEEL_SLOTS as u64) as usize].push(k);
                    self.in_buckets += 1;
                } else {
                    break;
                }
            }
            let b = (self.cursor % WHEEL_SLOTS as u64) as usize;
            if !self.buckets[b].is_empty() {
                self.in_buckets -= self.buckets[b].len();
                self.current.extend(self.buckets[b].drain(..).map(Reverse));
            }
            if !self.current.is_empty() {
                return true;
            }
        }
    }

    pub(crate) fn pop_min(&mut self) -> Option<Key> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        self.current.pop().map(|Reverse(k)| k)
    }

    pub(crate) fn peek_min(&mut self) -> Option<Key> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        self.current.peek().map(|Reverse(k)| *k)
    }
}

/// The pre-wheel reference calendar (see [`Kernel::Legacy`]): a single
/// binary heap plus the tombstone set the old kernel probed on every pop.
struct LegacyCal {
    heap: BinaryHeap<Reverse<Key>>,
    tombstones: HashSet<u64>,
}

impl LegacyCal {
    fn new() -> LegacyCal {
        LegacyCal {
            heap: BinaryHeap::with_capacity(1024),
            tombstones: HashSet::new(),
        }
    }

    fn pop_min(&mut self) -> Option<Key> {
        let Reverse(k) = self.heap.pop()?;
        // Faithful to the old kernel's cost model: a hash probe per pop.
        self.tombstones.remove(&k.seq);
        Some(k)
    }
}

/// Per-lane wheels merged in global `(at, seq)` order (see
/// [`Kernel::Sharded`]). Each key lives in exactly one lane wheel, the
/// lane minima are each correct by the wheel invariant, and `(at, seq)`
/// is a total order — so the argmin over lanes is the global minimum and
/// the pop sequence is identical to a single wheel's. This is the merge
/// obligation of DESIGN.md §3.15 running serially under the full stack.
///
/// Each lane's head key is cached with lazy invalidation: a pop dirties
/// only the popped lane, so the argmin compares `lanes` plain 24-byte
/// keys instead of running `lanes` wheel peeks (each a potential
/// cursor-advance/refill) per pop. Cancellation never invalidates a
/// cached head — cancelled keys stay in the calendar and are discarded
/// as stale by [`Sched`] when popped, so the cache always mirrors what
/// `peek_min` on the lane would return.
struct ShardedCal {
    lanes: Vec<WheelCal>,
    /// Cached `lanes[i].peek_min()`, valid iff `!dirty[i]`.
    heads: Vec<Option<Key>>,
    /// True when `heads[i]` must be re-peeked before use.
    dirty: Vec<bool>,
}

impl ShardedCal {
    fn new(lanes: usize) -> ShardedCal {
        let n = lanes.max(1);
        ShardedCal {
            lanes: (0..n).map(|_| WheelCal::new()).collect(),
            heads: vec![None; n],
            dirty: vec![false; n],
        }
    }

    fn push(&mut self, key: Key) {
        let n = self.lanes.len() as u64;
        let i = (key.seq % n) as usize;
        self.lanes[i].push(key);
        // A clean cache stays clean: pushing can only lower the lane
        // minimum, and `(at, seq)` has no duplicates.
        if !self.dirty[i] {
            match self.heads[i] {
                Some(h) if h < key => {}
                _ => self.heads[i] = Some(key),
            }
        }
    }

    /// Lane index holding the globally minimal `(at, seq)` key, if any.
    /// Refreshes dirty heads on the way; clean lanes cost one key compare.
    fn min_lane(&mut self) -> Option<usize> {
        let mut best: Option<(Key, usize)> = None;
        for i in 0..self.lanes.len() {
            if self.dirty[i] {
                self.heads[i] = self.lanes[i].peek_min();
                self.dirty[i] = false;
            }
            if let Some(k) = self.heads[i] {
                // Strict `<` keeps the scan order irrelevant: (at, seq) is
                // a total order with no duplicates across lanes.
                if best.is_none_or(|(b, _)| k < b) {
                    best = Some((k, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn pop_min(&mut self) -> Option<Key> {
        let i = self.min_lane()?;
        self.dirty[i] = true;
        self.lanes[i].pop_min()
    }

    fn peek_min(&mut self) -> Option<Key> {
        let i = self.min_lane()?;
        self.heads[i]
    }
}

enum Calendar {
    Wheel(WheelCal),
    Legacy(LegacyCal),
    Sharded(ShardedCal),
}

impl Calendar {
    fn push(&mut self, key: Key) {
        match self {
            Calendar::Wheel(w) => w.push(key),
            Calendar::Legacy(l) => l.heap.push(Reverse(key)),
            Calendar::Sharded(s) => s.push(key),
        }
    }

    fn pop_min(&mut self) -> Option<Key> {
        match self {
            Calendar::Wheel(w) => w.pop_min(),
            Calendar::Legacy(l) => l.pop_min(),
            Calendar::Sharded(s) => s.pop_min(),
        }
    }

    fn peek_min(&mut self) -> Option<Key> {
        match self {
            Calendar::Wheel(w) => w.peek_min(),
            Calendar::Legacy(l) => l.heap.peek().map(|Reverse(k)| *k),
            Calendar::Sharded(s) => s.peek_min(),
        }
    }

    /// Record a cancellation the way the legacy kernel did (tombstone
    /// insert); the wheel needs nothing — generations already invalidate
    /// the key.
    fn note_cancel(&mut self, seq: u64) {
        if let Calendar::Legacy(l) = self {
            l.tombstones.insert(seq);
        }
    }
}

/// One-shot event slot: recycled through a free list, validated by `gen`.
struct EventSlot<O> {
    gen: u32,
    /// Sequence number of the occupying event (legacy tombstones key on it).
    seq: u64,
    f: Option<O>,
}

/// Re-armable timer slot: the closure is boxed once at creation time and
/// survives across arms, cancels and fires.
struct TimerSlot<M> {
    gen: u32,
    /// False once the owning timer handle is dropped.
    alive: bool,
    armed: bool,
    /// Sequence number of the currently armed firing, for legacy tombstones.
    armed_seq: u64,
    /// Auto re-arm period for periodic timers.
    auto: Option<Dur>,
    f: Option<M>,
}

/// What a popped live key resolved to.
pub(crate) enum Fired<O, M> {
    OneShot(O),
    Timer {
        idx: u32,
        gen: u32,
        auto: Option<Dur>,
        f: M,
    },
}

/// Calendar plus slab arena: the whole scheduler state behind one `&mut`.
///
/// The owner supplies the monotone sequence numbers (`seq` arguments) and
/// keeps the clock; this struct only orders, stores, and recycles.
pub(crate) struct Sched<O, M> {
    calendar: Calendar,
    events: Vec<EventSlot<O>>,
    free_events: Vec<u32>,
    timers: Vec<TimerSlot<M>>,
    free_timers: Vec<u32>,
    /// Logically pending firings: scheduled one-shots plus armed timers.
    live: usize,
}

impl<O, M> Sched<O, M> {
    pub(crate) fn new(kernel: Kernel) -> Sched<O, M> {
        Sched {
            calendar: match kernel {
                Kernel::Wheel => Calendar::Wheel(WheelCal::new()),
                Kernel::Legacy => Calendar::Legacy(LegacyCal::new()),
                Kernel::Sharded { lanes } => Calendar::Sharded(ShardedCal::new(lanes)),
            },
            events: Vec::new(),
            free_events: Vec::new(),
            timers: Vec::new(),
            free_timers: Vec::new(),
            live: 0,
        }
    }

    /// Live (non-cancelled) pending firings.
    pub(crate) fn pending(&self) -> usize {
        self.live
    }

    /// Number of one-shot slots ever allocated (slab high-water mark).
    #[cfg(test)]
    pub(crate) fn event_arena_len(&self) -> usize {
        self.events.len()
    }

    /// Schedule a one-shot at `at` under sequence number `seq`.
    pub(crate) fn schedule(&mut self, at: Time, seq: u64, f: O) -> EventId {
        self.live += 1;
        let (slot, gen) = if let Some(idx) = self.free_events.pop() {
            let s = &mut self.events[idx as usize];
            debug_assert!(s.f.is_none(), "free-listed slot must be vacant");
            s.f = Some(f);
            s.seq = seq;
            (idx, s.gen)
        } else {
            let idx = self.events.len() as u32;
            assert!(idx < TIMER_BIT, "event slot space exhausted");
            self.events.push(EventSlot {
                gen: 0,
                seq,
                f: Some(f),
            });
            (idx, 0)
        };
        self.calendar.push(Key { at, seq, slot, gen });
        EventId::pack(slot, gen)
    }

    /// Cancel a pending one-shot. No-op if it already fired or was
    /// cancelled. O(1): the slot's generation is bumped (orphaning the
    /// calendar key, which is discarded when popped) and the closure is
    /// dropped now.
    pub(crate) fn cancel(&mut self, id: EventId) {
        let (slot, gen) = id.unpack();
        debug_assert_eq!(slot & TIMER_BIT, 0, "EventId never refers to a timer");
        let Some(s) = self.events.get_mut(slot as usize) else {
            return;
        };
        if s.gen != gen || s.f.is_none() {
            return; // already fired, cancelled, or recycled
        }
        s.f = None;
        s.gen = s.gen.wrapping_add(1);
        let seq = s.seq;
        self.free_events.push(slot);
        self.live -= 1;
        self.calendar.note_cancel(seq);
    }

    /// Allocate a timer slot around `f`; returns the slot index.
    pub(crate) fn make_timer(&mut self, auto: Option<Dur>, f: M) -> u32 {
        if let Some(idx) = self.free_timers.pop() {
            let t = &mut self.timers[idx as usize];
            debug_assert!(t.f.is_none() && !t.alive);
            t.alive = true;
            t.armed = false;
            t.auto = auto;
            t.f = Some(f);
            idx
        } else {
            let idx = self.timers.len() as u32;
            assert!(idx < TIMER_BIT, "timer slot space exhausted");
            self.timers.push(TimerSlot {
                gen: 0,
                alive: true,
                armed: false,
                armed_seq: 0,
                auto,
                f: Some(f),
            });
            idx
        }
    }

    /// Arm timer slot `idx` to fire at `at` under `seq`. Caller guarantees
    /// it is alive and disarmed.
    pub(crate) fn arm_timer(&mut self, idx: u32, at: Time, seq: u64) {
        let t = &mut self.timers[idx as usize];
        debug_assert!(t.alive && !t.armed);
        t.armed = true;
        t.armed_seq = seq;
        let gen = t.gen;
        self.live += 1;
        self.calendar.push(Key {
            at,
            seq,
            slot: idx | TIMER_BIT,
            gen,
        });
    }

    pub(crate) fn timer_is_armed(&self, idx: u32) -> bool {
        self.timers[idx as usize].armed
    }

    /// Disarm the timer's pending firing, if any. The closure is kept.
    pub(crate) fn cancel_timer(&mut self, idx: u32) {
        let t = &mut self.timers[idx as usize];
        if !t.armed {
            return;
        }
        t.armed = false;
        t.gen = t.gen.wrapping_add(1);
        let seq = t.armed_seq;
        self.live -= 1;
        self.calendar.note_cancel(seq);
    }

    /// Release a timer slot on handle drop (after [`Self::cancel_timer`]).
    pub(crate) fn release_timer(&mut self, idx: u32) {
        let t = &mut self.timers[idx as usize];
        t.alive = false;
        t.gen = t.gen.wrapping_add(1);
        // The closure may be absent mid-fire; the fire path sees
        // `alive == false` and discards it instead of putting it back.
        t.f = None;
        t.auto = None;
        self.free_timers.push(idx);
    }

    /// Resolve a popped key against the slab; `None` means the key was
    /// stale (cancelled / superseded) and carried no work.
    fn take_fired(&mut self, key: Key) -> Option<Fired<O, M>> {
        if key.slot & TIMER_BIT != 0 {
            let idx = key.slot & !TIMER_BIT;
            let t = &mut self.timers[idx as usize];
            if t.gen != key.gen || !t.armed {
                return None;
            }
            t.armed = false;
            let f = t.f.take().expect("armed timer holds its closure");
            let auto = t.auto;
            self.live -= 1;
            Some(Fired::Timer {
                idx,
                gen: key.gen,
                auto,
                f,
            })
        } else {
            let s = &mut self.events[key.slot as usize];
            if s.gen != key.gen {
                return None;
            }
            let f = s.f.take().expect("live event slot holds its closure");
            s.gen = s.gen.wrapping_add(1);
            self.free_events.push(key.slot);
            self.live -= 1;
            Some(Fired::OneShot(f))
        }
    }

    /// Pop the next live firing (skipping stale keys), with its instant.
    pub(crate) fn pop_fired(&mut self) -> Option<(Time, Fired<O, M>)> {
        loop {
            let key = self.calendar.pop_min()?;
            if let Some(fired) = self.take_fired(key) {
                return Some((key.at, fired));
            }
        }
    }

    /// Give a timer closure back to its slot after a firing; returns
    /// `Some(period)` when the owner must auto re-arm (periodic timer whose
    /// callback neither re-armed nor cancelled nor dropped the handle).
    pub(crate) fn finish_timer_fire(&mut self, idx: u32, gen: u32, f: M) -> Option<Dur> {
        let t = &mut self.timers[idx as usize];
        if t.alive && t.f.is_none() {
            t.f = Some(f);
            if t.gen == gen && !t.armed {
                t.auto
            } else {
                None
            }
        } else {
            None
        }
    }

    /// Instant of the next live (non-cancelled) firing, discarding any
    /// stale keys found on the way.
    pub(crate) fn next_live_at(&mut self) -> Option<Time> {
        loop {
            let key = self.calendar.peek_min()?;
            let live = if key.slot & TIMER_BIT != 0 {
                let t = &self.timers[(key.slot & !TIMER_BIT) as usize];
                t.gen == key.gen && t.armed
            } else {
                self.events[key.slot as usize].gen == key.gen
            };
            if live {
                return Some(key.at);
            }
            // Stale: drop it so a cancelled head can't mask a live event
            // beyond the caller's deadline.
            let _ = self.calendar.pop_min();
        }
    }
}
