//! `xrdma_context` — the per-thread root object (§IV-A/B).
//!
//! One context owns one simulated CPU thread, one PD, one shared CQ, the
//! memory cache, the QP cache and a per-context timer — all per-thread, no
//! cross-thread sharing, exactly the run-to-complete model of §IV-B. The
//! context's poll loop drives every channel's protocol machinery and
//! dispatches application handlers synchronously on the thread.

use std::cell::{Cell, Ref, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use xrdma_fabric::{Fabric, NodeId};
use xrdma_rnic::cq::CqeOpcode;
use xrdma_rnic::mem::Pd;
use xrdma_rnic::{CompletionQueue, ConnManager, Cqe, Qp, QpCaps, Rnic, RnicConfig, SendWr, Srq};
use xrdma_sim::stats::Histogram;
use xrdma_sim::{CpuThread, Dur, SimRng, Time, World};
use xrdma_telemetry::tele;

use crate::channel::{wr_tag, CloseReason, XrdmaChannel, TAG_READ};
use crate::config::{PollMode, XrdmaConfig};
use crate::error::XrdmaError;
use crate::memcache::{McBuf, MemCache};
use crate::proto::Header;
use crate::qpcache::QpCache;
use crate::stats::ContextStats;

/// Emulated event descriptor (Table I: `get_event_fd`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XrdmaFd(pub u32);

/// A finished trace record (what `trace_request` returns, §VI-A).
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    pub trace_id: u64,
    pub rpc_id: u32,
    /// Requester clock at send.
    pub t1_ns: u64,
    /// Responder clock at request arrival (shipped back in the response).
    pub server_recv_ns: u64,
    /// Requester clock at response arrival.
    pub t3_ns: u64,
}

impl TraceRecord {
    /// Estimated request one-way latency given the known clock offset
    /// (T2 − T1 − Toff, §VI-A method I).
    pub fn request_oneway_ns(&self, offset_ns: i64) -> i64 {
        self.server_recv_ns as i64 - self.t1_ns as i64 - offset_ns
    }

    /// Full round-trip time as seen by the requester.
    pub fn rtt_ns(&self) -> u64 {
        self.t3_ns.saturating_sub(self.t1_ns)
    }
}

/// A slow-operation log line (§VI-A method III).
#[derive(Clone, Debug)]
pub struct SlowOp {
    pub at: Time,
    pub what: &'static str,
    pub took: Dur,
}

/// Instrumentation hooks the analysis framework attaches (crate
/// `xrdma-analysis`); all methods default to no-ops.
pub trait Instrument {
    fn on_poll_gap(&self, _at: Time, _gap: Dur) {}
    fn on_slow_op(&self, _op: &SlowOp) {}
    fn on_trace(&self, _rec: &TraceRecord) {}
    fn on_channel_closed(&self, _peer: NodeId, _reason: CloseReason) {}
    fn on_timer_tick(&self, _at: Time) {}
}

/// Flow-control shared state (§V-C queuing).
struct FlowState {
    outstanding: usize,
    queue: VecDeque<Box<dyn FnOnce()>>,
}

/// The per-thread middleware context.
pub struct XrdmaContext {
    world: Rc<World>,
    thread: Rc<CpuThread>,
    rnic: Rc<Rnic>,
    cm: Rc<ConnManager>,
    pd: Rc<Pd>,
    cq: Rc<CompletionQueue>,
    srq: Option<Rc<Srq>>,
    /// Shared receive slot pool (SRQ mode): one bounded set of buffers
    /// serves every QP in the pool, so receive memory scales with
    /// `srq_size`, not with the channel count (§IV-E at mux scale).
    srq_slots: RefCell<BTreeMap<u32, McBuf>>,
    config: RefCell<XrdmaConfig>,
    memcache: MemCache,
    qpcache: QpCache,
    channels: RefCell<BTreeMap<u32, Rc<XrdmaChannel>>>, // by qpn
    flow: RefCell<FlowState>,
    stats: RefCell<ContextStats>,
    rpc_latency: RefCell<Histogram>,
    /// Clock skew of this host relative to global virtual time (ns). The
    /// clock-sync service in the analysis crate estimates offsets between
    /// hosts; tests inject skew here.
    pub clock_skew_ns: Cell<i64>,
    next_trace: Cell<u64>,
    traces: RefCell<BTreeMap<u64, TraceRecord>>,
    /// Open server-side trace halves (trace_id → server recv local ns).
    server_traces: RefCell<BTreeMap<u64, u64>>,
    slow_log: RefCell<Vec<SlowOp>>,
    instrument: RefCell<Option<Rc<dyn Instrument>>>,
    last_pump_end: Cell<Time>,
    /// When the oldest un-pumped completion became ready (poll-gap base).
    pump_requested_at: Cell<Option<Time>>,
    pump_scheduled: Cell<bool>,
    last_traffic: Cell<Time>,
    fd_readable_cb: RefCell<Option<Box<dyn Fn()>>>,
    timer_running: Cell<bool>,
    /// The keepalive/housekeeping tick timer: its closure is boxed once and
    /// re-armed from `tick` without further allocation.
    tick_timer: RefCell<Option<xrdma_sim::Timer>>,
    tick_count: Cell<u64>,
    /// Scratch CQE buffer reused by every `polling` call (the shared-CQ
    /// fast path drains into it without allocating).
    poll_buf: RefCell<Vec<Cqe>>,
    /// Data WRs awaiting the next doorbell flush (doorbell coalescing).
    pending_doorbell: RefCell<Vec<(Rc<XrdmaChannel>, SendWr)>>,
    /// Whether a doorbell flush is queued on the thread.
    doorbell_armed: Cell<bool>,
    /// Flow-queued WRs whose slot was granted this quantum: they re-join
    /// the coalescing path instead of ringing one bell each.
    granted_doorbell: RefCell<Vec<(Rc<XrdmaChannel>, SendWr)>>,
    /// Whether a granted-WR flush is queued on the thread.
    granted_armed: Cell<bool>,
    /// Adaptive engine: currently busy-polling (`true`) or event-driven.
    engine_hot: Cell<bool>,
    /// Consecutive empty polls while busy (falls back to event mode at
    /// `poll_spin_limit`).
    empty_streak: Cell<u32>,
    /// When the engine last switched modes (residency accounting).
    mode_entered_at: Cell<Time>,
}

/// §VI-A method II edge rule: a poll gap is only a violation when it
/// *strictly exceeds* the warn cycle — completions that waited exactly one
/// cycle are healthy. Extracted so the boundary is unit-testable.
pub fn poll_gap_violates(gap: Dur, warn_cycle: Dur) -> bool {
    gap > warn_cycle
}

/// §VI-A method III edge rule, same strictness: an operation taking exactly
/// the threshold (including zero-length ops at a zero threshold) is not
/// slow.
pub fn slow_op_violates(took: Dur, threshold: Dur) -> bool {
    took > threshold
}

impl XrdmaContext {
    /// Create a context on an existing RNIC (several contexts may share
    /// one NIC — one per thread, as in production).
    pub fn new(
        rnic: &Rc<Rnic>,
        cm: &Rc<ConnManager>,
        config: XrdmaConfig,
        name: &str,
    ) -> Rc<XrdmaContext> {
        let world = rnic.world().clone();
        let thread = CpuThread::new(world.clone(), name.to_string());
        let pd = rnic.alloc_pd();
        let cq = rnic.create_cq(config.cq_size);
        let srq = if config.use_srq {
            Some(rnic.create_srq(config.srq_size))
        } else {
            None
        };
        let memcache = MemCache::new(
            rnic.clone(),
            pd.clone(),
            config.memcache,
            config.ibqp_alloc_type,
        );
        let caps = QpCaps {
            max_send_wr: config.cq_size,
            max_recv_wr: (config.inflight_depth + crate::channel::CTRL_SLACK) as usize + 4,
        };
        let qpcache = QpCache::new(
            rnic.clone(),
            pd.clone(),
            cq.clone(),
            srq.clone(),
            caps,
            config.qp_cache,
        );
        let ctx = Rc::new(XrdmaContext {
            world,
            thread,
            rnic: rnic.clone(),
            cm: cm.clone(),
            pd,
            cq,
            srq,
            srq_slots: RefCell::new(BTreeMap::new()),
            config: RefCell::new(config),
            memcache,
            qpcache,
            channels: RefCell::new(BTreeMap::new()),
            flow: RefCell::new(FlowState {
                outstanding: 0,
                queue: VecDeque::new(),
            }),
            stats: RefCell::new(ContextStats::default()),
            rpc_latency: RefCell::new(Histogram::new()),
            clock_skew_ns: Cell::new(0),
            next_trace: Cell::new(1),
            traces: RefCell::new(BTreeMap::new()),
            server_traces: RefCell::new(BTreeMap::new()),
            slow_log: RefCell::new(Vec::new()),
            instrument: RefCell::new(None),
            last_pump_end: Cell::new(Time::ZERO),
            pump_requested_at: Cell::new(None),
            pump_scheduled: Cell::new(false),
            last_traffic: Cell::new(Time::ZERO),
            fd_readable_cb: RefCell::new(None),
            timer_running: Cell::new(false),
            tick_timer: RefCell::new(None),
            tick_count: Cell::new(0),
            poll_buf: RefCell::new(Vec::new()),
            pending_doorbell: RefCell::new(Vec::new()),
            doorbell_armed: Cell::new(false),
            granted_doorbell: RefCell::new(Vec::new()),
            granted_armed: Cell::new(false),
            engine_hot: Cell::new(false),
            empty_streak: Cell::new(0),
            mode_entered_at: Cell::new(Time::ZERO),
        });
        // Wire the completion channel into the poll loop.
        {
            let me = Rc::downgrade(&ctx);
            ctx.cq.set_notify(move || {
                if let Some(ctx) = me.upgrade() {
                    ctx.schedule_pump();
                }
            });
            ctx.cq.req_notify();
        }
        ctx.prepost_srq_slots();
        ctx.start_timer();
        ctx
    }

    /// SRQ mode: fill the shared receive queue once, at context setup.
    /// Channels skip their per-QP preposting; every consumed slot is
    /// reposted by the dispatch path, so the pool is a fixed rotation.
    fn prepost_srq_slots(self: &Rc<Self>) {
        let Some(srq) = self.srq.clone() else {
            return;
        };
        let n = self.config().srq_size;
        let slot_len = XrdmaChannel::recv_slot_len(self);
        for id in 0..n as u32 {
            let buf = self
                .memcache
                .alloc(slot_len)
                .expect("memcache must cover the shared receive pool");
            self.srq_slots.borrow_mut().insert(id, buf);
            srq.post(xrdma_rnic::RecvWr::new(
                id as u64, buf.addr, buf.len, buf.lkey,
            ))
            .expect("SRQ sized for its own slot pool");
        }
        self.thread.charge(self.memcache.take_reg_cost());
    }

    /// Is receive buffering shared across the QP pool?
    pub fn has_srq(&self) -> bool {
        self.srq.is_some()
    }

    /// Occupancy of the shared receive queue `(posted, pool)` — the
    /// xr-stat QP-cache panel's SRQ column.
    pub fn srq_depth(&self) -> Option<(usize, usize)> {
        self.srq
            .as_ref()
            .map(|s| (s.len(), self.srq_slots.borrow().len()))
    }

    /// Resolve a shared receive slot by wr_id (SRQ mode only).
    pub(crate) fn srq_slot(&self, id: u32) -> Option<McBuf> {
        self.srq_slots.borrow().get(&id).copied()
    }

    /// Return a consumed shared slot to the SRQ rotation.
    pub(crate) fn repost_srq_slot(&self, id: u32) {
        let (Some(srq), Some(buf)) = (self.srq.as_ref(), self.srq_slot(id)) else {
            return;
        };
        let _ = srq.post(xrdma_rnic::RecvWr::new(
            id as u64, buf.addr, buf.len, buf.lkey,
        ));
    }

    /// Convenience: create the RNIC too (one context on a fresh node).
    pub fn on_new_node(
        fabric: &Rc<Fabric>,
        cm: &Rc<ConnManager>,
        node: NodeId,
        rnic_cfg: RnicConfig,
        config: XrdmaConfig,
        rng: &SimRng,
    ) -> Rc<XrdmaContext> {
        let rnic = Rnic::new(fabric, node, rnic_cfg, rng.fork_idx(node.0 as u64));
        XrdmaContext::new(&rnic, cm, config, &format!("xrdma-n{}", node.0))
    }

    // ------------------------------------------------------------------
    // Accessors used across the crate
    // ------------------------------------------------------------------

    pub fn world(&self) -> &Rc<World> {
        &self.world
    }

    pub fn thread(&self) -> &Rc<CpuThread> {
        &self.thread
    }

    pub fn rnic(&self) -> &Rc<Rnic> {
        &self.rnic
    }

    /// The context's shared completion queue. Exposed so the monitor can
    /// surface the raw CQ counters (polls / empty polls / notify fires) as
    /// gauges without the context re-counting them.
    pub fn cq(&self) -> &Rc<CompletionQueue> {
        &self.cq
    }

    pub fn node(&self) -> NodeId {
        self.rnic.node()
    }

    pub fn memcache(&self) -> &MemCache {
        &self.memcache
    }

    pub fn qpcache(&self) -> &QpCache {
        &self.qpcache
    }

    pub fn config(&self) -> Ref<'_, XrdmaConfig> {
        self.config.borrow()
    }

    /// Attach analysis-framework instrumentation.
    pub fn set_instrument(&self, i: Rc<dyn Instrument>) {
        *self.instrument.borrow_mut() = Some(i);
    }

    /// This host's local clock (global virtual time + skew).
    pub fn local_clock_ns(&self) -> u64 {
        self.local_clock_at(self.world.now())
    }

    pub fn local_clock_at(&self, t: Time) -> u64 {
        (t.nanos() as i64 + self.clock_skew_ns.get()).max(0) as u64
    }

    pub(crate) fn next_trace_id(&self) -> u64 {
        let id = self.next_trace.get();
        self.next_trace.set(id + 1);
        id
    }

    // ------------------------------------------------------------------
    // Table I: the eight major APIs
    // ------------------------------------------------------------------

    /// `xrdma_polling` — drain completions and run handlers. Returns the
    /// number of completion events processed.
    pub fn polling(self: &Rc<Self>, max: usize) -> usize {
        // Per-call cost of poll_cq, independent of how many CQEs it
        // drains — the overhead CQ batching amortizes.
        self.thread.charge(self.config().cpu_poll);
        let mut buf = self.poll_buf.take();
        let n = self.cq.poll_cq(&mut buf, max);
        // Per-channel batch-size accounting (xr-stat's CQ-BATCH column).
        if n > 0 {
            let mut per_qp: BTreeMap<u32, u64> = BTreeMap::new();
            for cqe in buf.iter() {
                *per_qp.entry(cqe.qpn.0).or_insert(0) += 1;
            }
            let channels = self.channels.borrow();
            for (qpn, count) in per_qp {
                if let Some(ch) = channels.get(&qpn) {
                    ch.cqe_batch.borrow_mut().record(count);
                }
            }
        }
        for cqe in buf.drain(..) {
            self.dispatch(cqe);
        }
        self.poll_buf.replace(buf);
        {
            let mut st = self.stats.borrow_mut();
            st.events_polled += n as u64;
            st.cq_polls += 1;
            if n == 0 {
                st.cq_empty_polls += 1;
            }
        }
        if self.config().poll_mode == PollMode::Adaptive {
            self.adaptive_after_poll(n);
        } else if self.cq.is_empty() {
            self.cq.req_notify();
        } else {
            self.schedule_pump();
        }
        n
    }

    /// `xrdma_get_event_fd` — the descriptor to select/poll/epoll on.
    pub fn get_event_fd(&self) -> XrdmaFd {
        XrdmaFd(self.cq.id)
    }

    /// Register interest in fd readability (the epoll registration).
    pub fn on_fd_readable(&self, f: impl Fn() + 'static) {
        *self.fd_readable_cb.borrow_mut() = Some(Box::new(f));
    }

    /// `xrdma_process_event` — handle events after an fd wakeup.
    pub fn process_event(self: &Rc<Self>, _fd: XrdmaFd) -> usize {
        self.polling(usize::MAX)
    }

    /// `xrdma_reg_mem` — register application memory for RDMA.
    pub fn reg_mem(&self, len: u64) -> crate::memcache::McBuf {
        let cfg = self.config();
        let mr = self.rnic.reg_mr(
            &self.pd,
            len,
            xrdma_rnic::AccessFlags::FULL,
            cfg.ibqp_alloc_type,
            true,
            false,
        );
        self.thread
            .charge(self.rnic.reg_mr_cost(len, cfg.ibqp_alloc_type));
        crate::memcache::McBuf {
            addr: mr.addr,
            len,
            lkey: mr.lkey,
            rkey: mr.rkey,
        }
    }

    /// `xrdma_dereg_mem`.
    pub fn dereg_mem(&self, buf: &crate::memcache::McBuf) {
        if let Some(mr) = self.rnic.mem().by_lkey(buf.lkey) {
            self.rnic.dereg_mr(&mr);
        }
    }

    /// `xrdma_set_flag` — online configuration change (Table III).
    pub fn set_flag(&self, key: &str, value: &str) -> Result<(), XrdmaError> {
        self.config.borrow_mut().set_flag(key, value)
    }

    /// `xrdma_trace_request` — fetch the trace record of a completed,
    /// traced RPC (req-rsp mode, §VI-A).
    pub fn trace_request(&self, trace_id: u64) -> Option<TraceRecord> {
        self.traces.borrow().get(&trace_id).copied()
    }

    /// All completed trace records (analysis-framework export).
    pub fn all_traces(&self) -> Vec<TraceRecord> {
        self.traces.borrow().values().copied().collect()
    }

    /// Slow-operation log (§VI-A method III).
    pub fn slow_log(&self) -> Vec<SlowOp> {
        self.slow_log.borrow().clone()
    }

    // ------------------------------------------------------------------
    // Connection management
    // ------------------------------------------------------------------

    /// Listen for inbound channels at `svc`; `on_channel` fires for each.
    pub fn listen(self: &Rc<Self>, svc: u16, on_channel: impl Fn(Rc<XrdmaChannel>) + 'static) {
        let me = Rc::downgrade(self);
        let me2 = Rc::downgrade(self);
        self.cm.listen(
            &self.rnic,
            svc,
            move || {
                // A dropped context declines instead of panicking; the
                // connecting side sees ConnectionRefused.
                let ctx = me.upgrade()?;
                let cached = ctx.qpcache.get();
                {
                    let mut st = ctx.stats.borrow_mut();
                    if cached.fresh {
                        st.qp_cache_misses += 1;
                    } else {
                        st.qp_cache_hits += 1;
                    }
                }
                Some((cached.qp, cached.fresh))
            },
            move |qp, peer| {
                let Some(ctx) = me2.upgrade() else { return };
                let ch = ctx.install_channel(qp, peer);
                on_channel(ch);
            },
        );
    }

    /// `xrdma_connect` — establish a channel to `(peer, svc)`.
    pub fn connect(
        self: &Rc<Self>,
        peer: NodeId,
        svc: u16,
        done: impl FnOnce(Result<Rc<XrdmaChannel>, XrdmaError>) + 'static,
    ) {
        let cached = self.qpcache.get();
        {
            let mut st = self.stats.borrow_mut();
            if cached.fresh {
                st.qp_cache_misses += 1;
            } else {
                st.qp_cache_hits += 1;
            }
        }
        let me = Rc::downgrade(self);
        let fresh = cached.fresh;
        self.cm
            .connect(&self.rnic, cached.qp, fresh, peer, svc, move |r| {
                let Some(ctx) = me.upgrade() else {
                    done(Err(XrdmaError::ChannelClosed));
                    return;
                };
                match r {
                    Ok(qp) => {
                        let ch = ctx.install_channel(qp, peer);
                        done(Ok(ch));
                    }
                    Err(e) => {
                        let msg: &'static str = match e {
                            xrdma_rnic::cm::CmError::ConnectionRefused => "refused",
                            xrdma_rnic::cm::CmError::Timeout => "timeout",
                            xrdma_rnic::cm::CmError::BadQpState => "bad qp state",
                        };
                        done(Err(XrdmaError::Connect(msg)));
                    }
                }
            });
    }

    fn install_channel(self: &Rc<Self>, qp: Rc<Qp>, peer: NodeId) -> Rc<XrdmaChannel> {
        let ch = XrdmaChannel::new(self, qp.clone(), peer);
        self.channels.borrow_mut().insert(qp.qpn.0, ch.clone());
        self.stats.borrow_mut().channels_open = self.channels.borrow().len();
        ch
    }

    pub(crate) fn channel_closed(&self, ch: &Rc<XrdmaChannel>, reason: CloseReason) {
        self.channels.borrow_mut().remove(&ch.qp.qpn.0);
        {
            let mut st = self.stats.borrow_mut();
            st.channels_open = self.channels.borrow().len();
            st.channels_closed_total += 1;
            if reason == CloseReason::PeerDead {
                st.keepalive_failures += 1;
            }
        }
        // Recycle the QP (errored QPs are destroyed inside put()).
        self.qpcache.put(ch.qp.clone());
        if let Some(i) = self.instrument.borrow().as_ref() {
            i.on_channel_closed(ch.peer, reason);
        }
    }

    /// Open channels right now.
    pub fn channel_count(&self) -> usize {
        self.channels.borrow().len()
    }

    /// Iterate open channels (monitoring / XR-Stat).
    pub fn channels(&self) -> Vec<Rc<XrdmaChannel>> {
        self.channels.borrow().values().cloned().collect()
    }

    // ------------------------------------------------------------------
    // Flow control (§V-C queuing)
    // ------------------------------------------------------------------

    /// Post a data WR through the outstanding-WR gate: runs `f` now if
    /// under the limit, otherwise queues it.
    pub(crate) fn flow_post(&self, f: impl FnOnce() + 'static) {
        let cfg = self.config().flowctl;
        let mut flow = self.flow.borrow_mut();
        if !cfg.enabled || flow.outstanding < cfg.max_outstanding {
            flow.outstanding += 1;
            drop(flow);
            f();
        } else {
            flow.queue.push_back(Box::new(f));
        }
    }

    /// Release a slot without a completion (bail-out paths, teardown).
    pub(crate) fn flow_release(&self) {
        self.flow_done();
    }

    /// A data WR completed: release its slot and drain the queue.
    fn flow_done(&self) {
        let next = {
            let mut flow = self.flow.borrow_mut();
            flow.outstanding = flow.outstanding.saturating_sub(1);
            if let Some(f) = flow.queue.pop_front() {
                flow.outstanding += 1;
                Some(f)
            } else {
                None
            }
        };
        if let Some(f) = next {
            f();
        }
    }

    /// Outstanding + queued WRs (diagnostics).
    pub fn flow_depths(&self) -> (usize, usize) {
        let f = self.flow.borrow();
        (f.outstanding, f.queue.len())
    }

    /// Is the software flow queue at its hard cap (§V-C: the queue buffers
    /// excess requests, but not without bound)?
    pub(crate) fn flow_saturated(&self) -> bool {
        let cfg = self.config().flowctl;
        cfg.enabled && self.flow.borrow().queue.len() >= cfg.queue_cap
    }

    /// Acquire up to `want` outstanding-WR slots at once; returns how many
    /// were granted (possibly zero). Batch counterpart of `flow_post` for
    /// the doorbell-coalescing path.
    fn flow_try_acquire(&self, want: usize) -> usize {
        let cfg = self.config().flowctl;
        let mut flow = self.flow.borrow_mut();
        if !cfg.enabled {
            flow.outstanding += want;
            return want;
        }
        let take = want.min(cfg.max_outstanding.saturating_sub(flow.outstanding));
        flow.outstanding += take;
        take
    }

    // ------------------------------------------------------------------
    // Doorbell coalescing (the shared-CQ fast path's send side)
    // ------------------------------------------------------------------

    /// Queue a data WR for the next doorbell flush. Every WR queued before
    /// the flush item reaches the front of the thread FIFO — all sends
    /// issued within the current progress quantum, plus any from handlers
    /// queued ahead of the flush — is chained into per-QP postlists, and
    /// each postlist rings a single doorbell.
    pub(crate) fn post_coalesced(self: &Rc<Self>, ch: &Rc<XrdmaChannel>, wr: SendWr) {
        self.pending_doorbell.borrow_mut().push((ch.clone(), wr));
        if !self.doorbell_armed.replace(true) {
            let me = self.clone();
            self.thread.exec(Dur::ZERO, move |_| me.flush_doorbell());
        }
    }

    fn flush_doorbell(self: &Rc<Self>) {
        self.doorbell_armed.set(false);
        let batch = self.pending_doorbell.take();
        // One MMIO write batch covers every WR flushed in this quantum,
        // regardless of how many QPs the postlists span — the CPU-side
        // doorbell cost is paid once (tentpole contract: sends within one
        // progress quantum share a single doorbell charge).
        self.charge_doorbell(batch.len() as u64);
        let mut iter = batch.into_iter().peekable();
        while let Some((ch, wr)) = iter.next() {
            let mut group = vec![wr];
            while iter.peek().is_some_and(|(c, _)| Rc::ptr_eq(c, &ch)) {
                group.push(iter.next().expect("peeked").1);
            }
            self.post_group(&ch, group);
        }
    }

    /// Post one channel's chained WRs (doorbell already charged by the
    /// flush): the prefix the flow gate admits goes out as one postlist;
    /// the rest queue in software and re-coalesce when completions free
    /// their slots (§V-C).
    fn post_group(self: &Rc<Self>, ch: &Rc<XrdmaChannel>, mut wrs: Vec<SendWr>) {
        if ch.closed.get() {
            return; // no flow slots acquired yet; nothing to release
        }
        // Strict per-channel FIFO through the gate: while this channel has
        // WRs parked in the flow queue or granted-but-unflushed, a fresh
        // batch must queue behind them. Slots can free (and the gate can
        // open) while those older WRs still wait in the granted batch, so
        // without this check a newer seq would overtake them onto the
        // wire and the peer's window would drop it as a duplicate.
        let granted = if ch.flow_waiting.get() > 0 {
            0
        } else {
            self.flow_try_acquire(wrs.len())
        };
        let rest = wrs.split_off(granted);
        if !wrs.is_empty() {
            let n = wrs.len() as u32;
            match self.rnic.post_send_list(&ch.qp, wrs) {
                Ok(()) => ch.flow_slots.set(ch.flow_slots.get() + n),
                Err(_) => {
                    // QP died under us (keepalive race); hand the slots
                    // back and tear down. The remainder dies with the
                    // channel.
                    for _ in 0..n {
                        self.flow_release();
                    }
                    ch.fail(CloseReason::PeerDead);
                    return;
                }
            }
        }
        if rest.is_empty() {
            return;
        }
        ch.stats.borrow_mut().flowctl_queued += rest.len() as u64;
        ch.flow_waiting
            .set(ch.flow_waiting.get() + rest.len() as u32);
        let mut flow = self.flow.borrow_mut();
        for wr in rest {
            let me = ch.clone();
            flow.queue.push_back(Box::new(move || {
                if me.closed.get() {
                    me.flow_waiting.set(me.flow_waiting.get().saturating_sub(1));
                    if let Some(ctx) = me.ctx.upgrade() {
                        ctx.flow_release();
                    }
                    return;
                }
                let Some(ctx) = me.ctx.upgrade() else { return };
                // The slot this WR waited for is already held. Slots free
                // as completions drain, so several of these fire within
                // one quantum — batch them under one deferred doorbell
                // instead of ringing one bell each. The WR still counts as
                // waiting until the flush actually posts it.
                ctx.post_granted(&me, wr);
            }));
        }
    }

    /// Queue a flow-granted WR for the next granted-batch flush. Safe to
    /// defer: while anything sits in the flow queue the gate is full, so
    /// a fresh send for the same channel cannot overtake it through
    /// `post_group` — it joins the flow queue behind this WR.
    fn post_granted(self: &Rc<Self>, ch: &Rc<XrdmaChannel>, wr: SendWr) {
        self.granted_doorbell.borrow_mut().push((ch.clone(), wr));
        if !self.granted_armed.replace(true) {
            let me = self.clone();
            self.thread.exec(Dur::ZERO, move |_| me.flush_granted());
        }
    }

    /// Post every WR whose flow slot was granted this quantum: per-QP
    /// postlists under a single doorbell charge, mirroring
    /// [`Self::flush_doorbell`] but without touching the gate (the slots
    /// are already ours).
    fn flush_granted(self: &Rc<Self>) {
        self.granted_armed.set(false);
        let batch = self.granted_doorbell.take();
        self.charge_doorbell(batch.len() as u64);
        let mut iter = batch.into_iter().peekable();
        while let Some((ch, wr)) = iter.next() {
            let mut group = vec![wr];
            while iter.peek().is_some_and(|(c, _)| Rc::ptr_eq(c, &ch)) {
                group.push(iter.next().expect("peeked").1);
            }
            let n = group.len() as u32;
            ch.flow_waiting.set(ch.flow_waiting.get().saturating_sub(n));
            if ch.closed.get() {
                for _ in 0..n {
                    self.flow_release();
                }
                continue;
            }
            match self.rnic.post_send_list(&ch.qp, group) {
                Ok(()) => ch.flow_slots.set(ch.flow_slots.get() + n),
                Err(_) => {
                    for _ in 0..n {
                        self.flow_release();
                    }
                    ch.fail(CloseReason::PeerDead);
                }
            }
        }
    }

    /// Charge one doorbell ring carrying `wrs` WRs: CPU cost plus the
    /// coalescing-factor counters.
    pub(crate) fn charge_doorbell(&self, wrs: u64) {
        self.thread.charge(self.config().cpu_doorbell);
        let mut st = self.stats.borrow_mut();
        st.doorbells_rung += 1;
        st.doorbell_wrs += wrs;
    }

    // ------------------------------------------------------------------
    // Poll loop
    // ------------------------------------------------------------------

    /// Schedule a pump on the context thread, honouring the polling mode's
    /// wake-up cost (§IV-B hybrid polling).
    fn schedule_pump(self: &Rc<Self>) {
        if self.pump_requested_at.get().is_none() {
            self.pump_requested_at.set(Some(self.world.now()));
        }
        if self.pump_scheduled.replace(true) {
            return;
        }
        let delay = {
            let cfg = self.config();
            match cfg.poll_mode {
                PollMode::Busy => Dur::ZERO,
                PollMode::Event => cfg.wakeup_latency,
                PollMode::Hybrid => {
                    let since = self.world.now().since(self.last_traffic.get());
                    if since <= cfg.hybrid_window {
                        Dur::ZERO
                    } else {
                        cfg.wakeup_latency
                    }
                }
                // Hot = already spinning on the CQ, no wake-up to pay;
                // cold = armed notification, epoll wake-up cost applies.
                PollMode::Adaptive => {
                    if self.engine_hot.get() {
                        Dur::ZERO
                    } else {
                        cfg.wakeup_latency
                    }
                }
            }
        };
        if let Some(cb) = self.fd_readable_cb.borrow().as_ref() {
            cb();
        }
        let me = self.clone();
        self.thread.exec(delay, move |_| {
            me.pump_scheduled.set(false);
            me.pump();
        });
    }

    fn pump(self: &Rc<Self>) {
        let now = self.world.now();
        // Poll-gap watchdog (§VI-A method II): measure how long completed
        // work sat waiting for this poll — the thread was off doing
        // something slow (the Pangu allocator-lock case).
        if let Some(ready_at) = self.pump_requested_at.take() {
            let gap = now.since(ready_at);
            let warn = self.config().polling_warn_cycle;
            if poll_gap_violates(gap, warn) {
                self.stats.borrow_mut().poll_gap_warnings += 1;
                tele!(PollGap {
                    node: self.node().0,
                    gap_ns: gap.as_nanos(),
                });
                if let Some(i) = self.instrument.borrow().as_ref() {
                    i.on_poll_gap(now, gap);
                }
            }
        }
        self.last_traffic.set(now);
        let batch = self.config().cq_poll_batch;
        self.polling(batch);
        self.last_pump_end
            .set(self.world.now().max(self.thread.busy_until()));
    }

    // ------------------------------------------------------------------
    // Adaptive progress engine (§IV-B): busy-poll while hot, fall back
    // to event-driven wakeup after `poll_spin_limit` empty polls.
    // ------------------------------------------------------------------

    fn adaptive_after_poll(self: &Rc<Self>, n: usize) {
        let (limit, gap) = {
            let cfg = self.config();
            (cfg.poll_spin_limit, cfg.poll_spin_gap)
        };
        if n > 0 {
            self.empty_streak.set(0);
            if !self.engine_hot.get() {
                self.switch_mode(true);
            }
            if self.cq.is_empty() {
                self.schedule_spin(gap);
            } else {
                self.schedule_pump();
            }
        } else if self.engine_hot.get() {
            let streak = self.empty_streak.get() + 1;
            self.empty_streak.set(streak);
            if streak >= limit {
                self.switch_mode(false);
                self.cq.req_notify();
            } else {
                self.schedule_spin(gap);
            }
        } else {
            // Cold and empty: stay event-driven, re-arm the notification.
            self.cq.req_notify();
        }
    }

    /// Busy-poll respin: re-run the pump after the spin-loop gap without
    /// arming the completion channel and without counting as a poll-gap
    /// request (an empty spin is not a completion waiting for service).
    /// The gap must be nonzero: a zero-delay respin on an empty CQ would
    /// pin the simulation at one instant forever.
    fn schedule_spin(self: &Rc<Self>, gap: Dur) {
        if self.pump_scheduled.replace(true) {
            return;
        }
        let me = self.clone();
        self.thread.exec(gap.max(Dur::nanos(1)), move |_| {
            me.pump_scheduled.set(false);
            me.pump();
        });
    }

    /// Cross into busy (`hot = true`) or event mode, accumulating the
    /// residency of the mode being left.
    fn switch_mode(self: &Rc<Self>, hot: bool) {
        let now = self.world.now();
        let span = now.since(self.mode_entered_at.get()).as_nanos();
        {
            let mut st = self.stats.borrow_mut();
            if self.engine_hot.get() {
                st.busy_poll_ns += span;
            } else {
                st.event_mode_ns += span;
            }
            st.poll_mode_switches += 1;
        }
        self.engine_hot.set(hot);
        self.mode_entered_at.set(now);
        tele!(PollModeSwitch {
            node: self.node().0,
            to: if hot { "busy" } else { "event" },
            empty_polls: self.stats.borrow().cq_empty_polls,
        });
    }

    fn dispatch(self: &Rc<Self>, cqe: Cqe) {
        let ch = self.channels.borrow().get(&cqe.qpn.0).cloned();
        let ok = cqe.status.is_ok();
        match cqe.opcode {
            CqeOpcode::Recv | CqeOpcode::RecvWriteImm => {
                if let Some(ch) = ch {
                    if ok {
                        // CQE delivered to software: the span enters its
                        // final, application-side stage.
                        xrdma_telemetry::span_mark!(cqe.span, App);
                        ch.on_recv(cqe.wr_id as u32, cqe.byte_len, cqe.span);
                    }
                    // Flush errors on receive need no action: teardown is
                    // driven from the send side / keepalive.
                } else if self.has_srq() {
                    // The channel died (eviction / close) before this
                    // completion drained: the shared slot must rejoin the
                    // rotation or the pool would slowly bleed dry.
                    self.repost_srq_slot(cqe.wr_id as u32);
                }
            }
            CqeOpcode::Read => {
                // Release the slot only while the channel still owns it
                // (teardown releases the rest in bulk; CQEs flushed after
                // teardown must not double-release).
                if let Some(ch) = ch {
                    if ch.flow_slots.get() > 0 {
                        ch.flow_slots.set(ch.flow_slots.get() - 1);
                        self.flow_done();
                    }
                    if ok {
                        debug_assert_eq!(wr_tag(cqe.wr_id), TAG_READ);
                        ch.on_read_done(cqe.wr_id);
                    } else {
                        ch.on_send_complete(cqe.wr_id, false);
                    }
                }
            }
            CqeOpcode::Send => {
                // Eager sends went through the flow gate; controls did not.
                if let Some(ch) = ch {
                    if wr_tag(cqe.wr_id) == crate::channel::TAG_EAGER && ch.flow_slots.get() > 0 {
                        ch.flow_slots.set(ch.flow_slots.get() - 1);
                        self.flow_done();
                    }
                    ch.on_send_complete(cqe.wr_id, ok);
                }
            }
            CqeOpcode::Write => {
                // Keepalive probes (zero-byte writes).
                if let Some(ch) = ch {
                    ch.on_send_complete(cqe.wr_id, ok);
                }
            }
            CqeOpcode::Atomic => {}
        }
    }

    // ------------------------------------------------------------------
    // Context timer: keepalive, NOP deadlock probe, cache shrink
    // ------------------------------------------------------------------

    fn start_timer(self: &Rc<Self>) {
        if self.timer_running.replace(true) {
            return;
        }
        self.arm_timer();
    }

    fn arm_timer(self: &Rc<Self>) {
        // The period is re-read on every arm (config is adjustable), but
        // the tick trampoline is boxed exactly once per context.
        let period = self.config().timer_period;
        if self.tick_timer.borrow().is_none() {
            // Weak capture: the slab slot must not keep the context (and
            // through it the world) alive — see DESIGN.md §3 on timer
            // ownership.
            let me = Rc::downgrade(self);
            let timer = self.world.timer(move || {
                let Some(me) = me.upgrade() else { return };
                let me2 = me.clone();
                me.thread.exec(Dur::ZERO, move |_| {
                    me2.tick();
                });
            });
            *self.tick_timer.borrow_mut() = Some(timer);
        }
        self.tick_timer
            .borrow()
            .as_ref()
            .expect("just installed")
            .arm_in(period);
    }

    fn tick(self: &Rc<Self>) {
        let now = self.world.now();
        self.tick_count.set(self.tick_count.get() + 1);
        let (ka_intv, nop_timeout) = {
            let cfg = self.config();
            (cfg.keepalive_intv, cfg.nop_timeout)
        };
        let channels: Vec<_> = self.channels.borrow().values().cloned().collect();
        for ch in channels {
            if ch.closed.get() {
                continue;
            }
            // KeepAlive (§V-A): probe after silence, at most one probe per
            // interval ("a probe request will be triggered if either side
            // fails to communicate with peer side more than S ms").
            if now.since(ch.last_rx.get()) >= ka_intv
                && now.since(ch.last_tx.get()) >= ka_intv
                && now.since(ch.last_probe.get()) >= ka_intv
            {
                ch.send_probe();
            }
            // NOP deadlock breaker (§V-B): window stalled with queued work
            // for too long — send a NOP to ferry our ACK across.
            if let Some(since) = ch.stalled_since.get() {
                if now.since(since) >= nop_timeout {
                    ch.send_ctrl(crate::proto::MsgKind::Nop);
                    ch.stalled_since.set(Some(now));
                }
            }
            // Ack flush for one-way traffic with no reverse messages to
            // piggyback on.
            ch.idle_ack();
        }
        // Memory-cache shrink every 8th tick (§IV-E "if the resource
        // utilization becomes lower, it will shrink its capacity").
        if self.tick_count.get().is_multiple_of(8) {
            self.memcache.shrink();
        }
        {
            let mut st = self.stats.borrow_mut();
            st.memcache_occupied = self.memcache.occupied_bytes();
            st.memcache_in_use = self.memcache.in_use_bytes();
        }
        if let Some(i) = self.instrument.borrow().as_ref() {
            i.on_timer_tick(now);
        }
        self.arm_timer();
    }

    // ------------------------------------------------------------------
    // Stats & tracing plumbing
    // ------------------------------------------------------------------

    pub fn stats(&self) -> ContextStats {
        let mut st = self.stats.borrow().clone();
        // Residency of the mode currently in progress (otherwise a context
        // that never switched back would report zero).
        if self.config().poll_mode == PollMode::Adaptive {
            let span = self
                .world
                .now()
                .since(self.mode_entered_at.get())
                .as_nanos();
            if self.engine_hot.get() {
                st.busy_poll_ns += span;
            } else {
                st.event_mode_ns += span;
            }
        }
        st.channels_open = self.channels.borrow().len();
        st.memcache_occupied = self.memcache.occupied_bytes();
        st.memcache_in_use = self.memcache.in_use_bytes();
        st.qp_cache_hits = self.qpcache.hits();
        st.qp_cache_misses = self.qpcache.misses();
        let h = self.rpc_latency.borrow();
        st.rpc_latency = if h.count() > 0 {
            Some(h.summary())
        } else {
            None
        };
        st
    }

    /// Raw RPC latency histogram (benchmarks read percentiles off it).
    pub fn rpc_latency_histogram(&self) -> Histogram {
        self.rpc_latency.borrow().clone()
    }

    pub(crate) fn record_rpc_latency(&self, d: Dur) {
        self.rpc_latency.borrow_mut().record(d.as_nanos());
    }

    pub(crate) fn record_slow_op(&self, what: &'static str, took: Dur) {
        let op = SlowOp {
            at: self.world.now(),
            what,
            took,
        };
        tele!(SlowOp {
            node: self.node().0,
            what,
            took_ns: took.as_nanos(),
        });
        if let Some(i) = self.instrument.borrow().as_ref() {
            i.on_slow_op(&op);
        }
        let mut log = self.slow_log.borrow_mut();
        if log.len() < 10_000 {
            log.push(op);
        }
    }

    /// Server side of a traced request: remember our arrival clock.
    pub(crate) fn record_server_trace(&self, hdr: &Header, t2: Time) {
        if let Some(t) = hdr.trace {
            self.server_traces
                .borrow_mut()
                .insert(t.trace_id, self.local_clock_at(t2));
        }
    }

    /// Client side: the traced response arrived.
    pub(crate) fn record_client_trace(
        &self,
        trace_id: u64,
        t1_ns: u64,
        server_recv_ns: u64,
        rpc_id: u32,
    ) {
        let rec = TraceRecord {
            trace_id,
            rpc_id,
            t1_ns,
            server_recv_ns,
            t3_ns: self.local_clock_ns(),
        };
        if let Some(i) = self.instrument.borrow().as_ref() {
            i.on_trace(&rec);
        }
        let mut traces = self.traces.borrow_mut();
        if traces.len() >= 100_000 {
            traces.clear(); // bounded ring, coarse
        }
        traces.insert(trace_id, rec);
    }
}
