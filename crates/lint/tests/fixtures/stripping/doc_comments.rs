//! Instant::now() is banned here; so are thread_rng() and emit_raw().

/// Iterating a HashMap via `.values()` is nondeterministic; Box::new(
/// payload.clone()) would allocate on the hot path; xrdma_faults::drop
/// must be gated; thread_local! singletons fork under sharding.
fn documented() {}
