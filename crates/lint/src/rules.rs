//! Token-level rule checks.
//!
//! Each check walks a file's token stream (with per-token [`Flags`] from
//! the scope pass and the workspace [`Symbols`] table) and emits
//! [`Violation`]s. Because matching is token-exact, none of the PR-1
//! false-positive classes survive: patterns inside string literals, doc
//! comments and block comments never tokenize as identifiers, and
//! identifier matches are whole-token (`InstantaneousRate` is not
//! `Instant`).

use std::path::Path;

use crate::lexer::{TokKind, Token};
use crate::scope::Flags;
use crate::symbols::Symbols;
use crate::{Rule, Violation};

/// Files carrying the per-packet or per-WR data path, where P1 applies.
/// Everything else in the fabric/RNIC/core crates (config, memory
/// registration, stats aggregation) allocates at setup or teardown time
/// and is exempt. `cq.rs` is the shared-CQ drain and `channel.rs` the
/// send/completion path of the middleware; `qpcache.rs` sits on the
/// connect path and `mux.rs` on the per-frame logical-channel path.
pub const HOT_PATH_FILES: &[&str] = &[
    "port.rs",
    "switch.rs",
    "fabric.rs",
    "engine.rs",
    "wire.rs",
    "cq.rs",
    "channel.rs",
    "qpcache.rs",
    "mux.rs",
];

/// Identifiers that name payload byte buffers; `.clone()` on one of these
/// in a hot file duplicates packet data.
const PAYLOAD_IDENTS: &[&str] = &["data", "payload", "body", "bytes", "buf", "frag", "gather"];

/// Iteration-shaped methods whose order leaks into behavior.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "values",
    "values_mut",
    "keys",
    "drain",
    "retain",
    "into_iter",
];

/// Method-chain adapters skipped when resolving the base of a call chain.
const CHAIN_ADAPTERS: &[&str] = &["borrow", "borrow_mut", "lock", "as_ref", "as_mut"];

/// Interior-mutable / lazily-initialized wrappers that make a `static`
/// cross-shard mutable state (S2). `static mut` itself is D4's.
const MUTABLE_STATIC_WRAPPERS: &[&str] = &[
    "Cell", "RefCell", "OnceCell", "OnceLock", "LazyLock", "Lazy", "Mutex", "RwLock",
];

/// Everything the per-file pass needs about one source file.
pub struct FileCtx<'a> {
    pub file: &'a Path,
    pub tokens: &'a [Token],
    pub flags: &'a [Flags],
    pub raw_lines: &'a [String],
    /// Identifiers known (by declaration, construction, or alias-typed
    /// field) to be hash-container values in this file.
    pub hash_idents: Vec<String>,
}

impl<'a> FileCtx<'a> {
    pub fn new(
        file: &'a Path,
        tokens: &'a [Token],
        flags: &'a [Flags],
        raw_lines: &'a [String],
        symbols: &Symbols,
    ) -> Self {
        let hash_idents = collect_hash_idents(tokens, symbols);
        FileCtx {
            file,
            tokens,
            flags,
            raw_lines,
            hash_idents,
        }
    }

    fn snippet(&self, line: u32) -> String {
        self.raw_lines
            .get(line as usize - 1)
            .cloned()
            .unwrap_or_default()
    }

    fn hit(&self, out: &mut Vec<Violation>, rule: Rule, line: u32, message: String) {
        out.push(Violation {
            rule,
            file: self.file.to_path_buf(),
            line: line as usize,
            snippet: self.snippet(line),
            message,
        });
    }
}

/// Run every token-scan rule in `rules` over the file. (S1 and the
/// `impl Ord` half of S3 are workspace-level — see [`Symbols`].)
pub fn check_file(ctx: &FileCtx, rules: &[Rule], out: &mut Vec<Violation>) {
    for rule in rules {
        match rule {
            Rule::WallClock => wall_clock(ctx, out),
            Rule::AmbientRandomness => ambient_randomness(ctx, out),
            Rule::NondeterministicIter => nondeterministic_iter(ctx, out),
            Rule::IntraWorldParallelism => intra_world_parallelism(ctx, out),
            Rule::UnwrapInApi => unwrap_in_api(ctx, out),
            Rule::RawTelemetry => raw_telemetry(ctx, out),
            Rule::UngatedFaultHook => ungated_fault_hook(ctx, out),
            Rule::HotPathAlloc => hot_path_alloc(ctx, out),
            Rule::CrossShardStatic => cross_shard_static(ctx, out),
            Rule::UnorderedMerge => unordered_merge_decls(ctx, out),
            // Workspace-level rules, handled by the driver.
            Rule::NonSendShardState | Rule::UnusedAllow => {}
        }
    }
}

fn live(ctx: &FileCtx, i: usize) -> bool {
    !ctx.flags[i].test
}

fn wall_clock(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if live(ctx, i) && (t.is_ident("Instant") || t.is_ident("SystemTime")) {
            ctx.hit(
                out,
                Rule::WallClock,
                t.line,
                format!(
                    "wall-clock `{}` in a simulation crate; use `World::now()` \
                     (virtual time) instead",
                    t.text
                ),
            );
        }
    }
}

fn ambient_randomness(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !live(ctx, i) || t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => true,
            "random" => {
                // `rand::random`
                i >= 3
                    && ctx.tokens[i - 1].is_punct(':')
                    && ctx.tokens[i - 2].is_punct(':')
                    && ctx.tokens[i - 3].is_ident("rand")
            }
            _ => false,
        };
        if hit {
            ctx.hit(
                out,
                Rule::AmbientRandomness,
                t.line,
                format!(
                    "ambient randomness `{}`; draw from a forked `xrdma_sim::SimRng` \
                     stream instead",
                    t.text
                ),
            );
        }
    }
}

fn intra_world_parallelism(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !live(ctx, i) {
            continue;
        }
        if toks[i].is_ident("spawn")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
        {
            ctx.hit(
                out,
                Rule::IntraWorldParallelism,
                toks[i].line,
                "`thread::spawn` inside a simulation crate; parallelism happens across \
                 worlds, never inside one"
                    .to_string(),
            );
        } else if toks[i].is_ident("static") && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
            ctx.hit(
                out,
                Rule::IntraWorldParallelism,
                toks[i].line,
                "`static mut` shared state breaks world isolation; thread state through \
                 the `World`"
                    .to_string(),
            );
        }
    }
}

fn raw_telemetry(ctx: &FileCtx, out: &mut Vec<Violation>) {
    // The raw span entry points share `emit_raw`'s contract: stack code
    // goes through the `span_open!`/`span_mark!`/`span_hop!`/`span_end!`
    // macros, whose expansions vanish in telemetry-off builds.
    const RAW_ENTRY_POINTS: [&str; 5] = [
        "emit_raw",
        "span_open_raw",
        "span_mark_raw",
        "span_hop_raw",
        "span_end_raw",
    ];
    for (i, t) in ctx.tokens.iter().enumerate() {
        if live(ctx, i) && RAW_ENTRY_POINTS.iter().any(|name| t.is_ident(name)) {
            ctx.hit(
                out,
                Rule::RawTelemetry,
                t.line,
                "direct raw telemetry call bypasses the `tele!`/`span_*!` macros; \
                 emission outside the macros is not compiled out in telemetry-off builds"
                    .to_string(),
            );
        }
    }
}

fn ungated_fault_hook(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if live(ctx, i) && t.is_ident("xrdma_faults") && !ctx.flags[i].faults_gated {
            ctx.hit(
                out,
                Rule::UngatedFaultHook,
                t.line,
                "`xrdma_faults` hook outside a `#[cfg(feature = \"faults\")]` gate; \
                 fault hooks must compile to nothing when the feature is off"
                    .to_string(),
            );
        }
    }
}

fn unwrap_in_api(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.flags[i].pub_fn || ctx.flags[i].test {
            continue;
        }
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        let is_unwrap = m.is_ident("unwrap")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
        let is_expect = m.is_ident("expect") && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
        if is_unwrap || is_expect {
            ctx.hit(
                out,
                Rule::UnwrapInApi,
                m.line,
                format!(
                    "`.{}` on a public API path; return an error (XrdmaError / \
                     VerbsError) or assert via debug_invariants",
                    if is_unwrap { "unwrap()" } else { "expect(…)" }
                ),
            );
        }
    }
}

fn nondeterministic_iter(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !live(ctx, i) {
            continue;
        }
        // `.iter()` / `.values()` / … on a known hash identifier.
        if toks[i].is_punct('.') {
            if let Some(m) = toks.get(i + 1) {
                if m.kind == TokKind::Ident
                    && ITER_METHODS.contains(&m.text.as_str())
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                {
                    if let Some(base) = chain_base(toks, i) {
                        if ctx.hash_idents.contains(&base) {
                            ctx.hit(
                                out,
                                Rule::NondeterministicIter,
                                m.line,
                                format!(
                                    "order-dependent iteration over hash container `{base}` \
                                     (`.{}`); use BTreeMap/BTreeSet or sort keys first",
                                    m.text
                                ),
                            );
                        }
                    }
                }
            }
        }
        // `for x in &map` / `for x in map` over a known hash identifier.
        if toks[i].is_ident("for") {
            // Find `in` before the loop body opens.
            let mut j = i + 1;
            let mut depth = 0;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                    j = toks.len();
                } else if depth == 0 && t.is_ident("in") {
                    break;
                }
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            // Expression tokens until the body `{`; accept only simple
            // `&`/`mut`/ident/`.` chains.
            let mut k = j + 1;
            let mut simple = true;
            let mut base: Option<String> = None;
            while k < toks.len() && !toks[k].is_punct('{') {
                let t = &toks[k];
                if t.kind == TokKind::Ident {
                    if t.text != "mut" {
                        base = Some(t.text.clone());
                    }
                } else if !(t.is_punct('&') || t.is_punct('.')) {
                    simple = false;
                    break;
                }
                k += 1;
            }
            if simple {
                if let Some(base) = base {
                    if ctx.hash_idents.contains(&base) {
                        ctx.hit(
                            out,
                            Rule::NondeterministicIter,
                            toks[i].line,
                            format!(
                                "order-dependent `for` loop over hash container `{base}`; \
                                 use BTreeMap/BTreeSet or sort keys first"
                            ),
                        );
                    }
                }
            }
        }
    }
}

fn hot_path_alloc(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let hot = ctx
        .file
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| HOT_PATH_FILES.contains(&n));
    if !hot {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !live(ctx, i) {
            continue;
        }
        let t = &toks[i];
        let mut alloc: Option<(&str, u32)> = None;
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("to_vec"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            alloc = Some((".to_vec()", toks[i + 1].line));
        } else if t.is_ident("vec") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            alloc = Some(("vec!", t.line));
        } else if (t.is_ident("Box") || t.is_ident("Bytes"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("new") || t.is_ident("from"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let what = if t.is_ident("Box") {
                "Box::new"
            } else {
                "Bytes::from"
            };
            // `Box::from` / `Bytes::new` are fine-grained misses we accept.
            let matches = (t.is_ident("Box") && toks[i + 3].is_ident("new"))
                || (t.is_ident("Bytes") && toks[i + 3].is_ident("from"));
            if matches {
                alloc = Some((what, t.line));
            }
        }
        if let Some((what, line)) = alloc {
            ctx.hit(
                out,
                Rule::HotPathAlloc,
                line,
                format!(
                    "heap allocation `{what}` on the per-packet path; carry payloads as \
                     `bytes::Bytes` slices of the per-message gather buffer (annotate \
                     one-time setup sites with a reason)"
                ),
            );
            continue;
        }
        // `.clone()` of a payload buffer.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("clone"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(base) = chain_base(toks, i) {
                if PAYLOAD_IDENTS.contains(&base.as_str()) {
                    ctx.hit(
                        out,
                        Rule::HotPathAlloc,
                        toks[i + 1].line,
                        format!(
                            "`.clone()` of payload buffer `{base}` on the per-packet path; \
                             `bytes::Bytes` windows are refcounted — slice instead of copying"
                        ),
                    );
                }
            }
        }
    }
}

fn cross_shard_static(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !live(ctx, i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        // `thread_local! { … }`: one finding for the whole block. Worlds
        // are per-thread today; under sharding, one world's events execute
        // on many rayon workers and per-thread singletons silently fork.
        if t.is_ident("thread_local") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            ctx.hit(
                out,
                Rule::CrossShardStatic,
                t.line,
                "`thread_local!` world-singleton: under sharded execution one world's \
                 events run on many worker threads, so per-thread state silently forks; \
                 carry it in the `World`/shard context instead"
                    .to_string(),
            );
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            i = crate::scope_match_brace(toks, j) + 1;
            continue;
        }
        // `static NAME: Wrapper<…>` with an interior-mutable or lazy
        // wrapper (`static mut` is D4's).
        if t.is_ident("static")
            && !toks.get(i + 1).is_some_and(|t| t.is_ident("mut"))
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i + 3;
            while j < toks.len() && !(toks[j].is_punct('=') || toks[j].is_punct(';')) {
                let w = &toks[j];
                if w.kind == TokKind::Ident
                    && (MUTABLE_STATIC_WRAPPERS.contains(&w.text.as_str())
                        || w.text.starts_with("Atomic"))
                {
                    ctx.hit(
                        out,
                        Rule::CrossShardStatic,
                        t.line,
                        format!(
                            "mutable/lazy `static {}` (`{}`) is cross-shard shared state; \
                             worlds must own their state so shards replay deterministically",
                            toks[i + 1].text,
                            w.text
                        ),
                    );
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
}

/// S3, declaration half: event containers keyed by bare `Time` — ties
/// between same-instant events would merge in nondeterministic order.
fn unordered_merge_decls(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !live(ctx, i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("BinaryHeap") && toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            // BinaryHeap<Time>, BinaryHeap<Reverse<Time>>.
            let bare = (toks.get(i + 2).is_some_and(|t| t.is_ident("Time"))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('>')))
                || (toks.get(i + 2).is_some_and(|t| t.is_ident("Reverse"))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
                    && toks.get(i + 4).is_some_and(|t| t.is_ident("Time"))
                    && toks.get(i + 5).is_some_and(|t| t.is_punct('>')));
            if bare {
                ctx.hit(
                    out,
                    Rule::UnorderedMerge,
                    t.line,
                    "event heap keyed by bare `Time`: same-instant entries pop in \
                     arbitrary order; key on `(Time, seq)` so cross-shard merges are \
                     deterministic"
                        .to_string(),
                );
            }
        }
        if t.is_ident("BTreeMap")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("Time"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(','))
        {
            ctx.hit(
                out,
                Rule::UnorderedMerge,
                t.line,
                "event map keyed by bare `Time`: a second event at the same instant \
                 overwrites or collides with the first; key on `(Time, seq)`"
                    .to_string(),
            );
        }
    }
}

/// The identifier a method chain hangs off: from the `.` at `dot`, walk
/// left over `(…)` groups and chain adapters (`borrow()`, `lock()`, …).
fn chain_base(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        if toks[j].is_punct(')') {
            // Skip back over the balanced group.
            let mut depth = 0;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            j -= 1;
            // Must be an adapter call to keep walking.
            if toks[j].kind == TokKind::Ident && CHAIN_ADAPTERS.contains(&toks[j].text.as_str()) {
                if j == 0 || !toks[j - 1].is_punct('.') {
                    return None;
                }
                j -= 1; // at the '.', loop continues left of it
                continue;
            }
            return None;
        }
        if toks[j].kind == TokKind::Ident {
            return Some(toks[j].text.clone());
        }
        return None;
    }
}

/// Identifiers declared or constructed as hash containers in this file:
/// `name: HashMap<…>` (field, let, param — including through an alias) and
/// `name = HashMap::new()` / `= HashSet::with_capacity(…)`.
fn collect_hash_idents(toks: &[Token], symbols: &Symbols) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    let mut push = |s: &str| {
        if !idents.iter().any(|x| x == s) {
            idents.push(s.to_string());
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_hash_name = t.text == "HashMap" || t.text == "HashSet";
        let is_hash_alias = !is_hash_name
            && symbols.aliases.get(&t.text).is_some_and(|rhs| {
                rhs.iter()
                    .any(|r| r.is_ident("HashMap") || r.is_ident("HashSet"))
            });
        if !is_hash_name && !is_hash_alias {
            continue;
        }
        // Construction: `… = [path::]HashMap::new(…)` — find the binding
        // ident just before the `=`.
        if is_hash_name
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i;
            // Walk back over a leading path (`std::collections::`).
            while j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].kind == TokKind::Ident
            {
                j -= 3;
            }
            if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == TokKind::Ident {
                push(&toks[j - 2].text);
                continue;
            }
        }
        // Declaration: walk back to the `name :` that opened this type.
        // The hash ident appears inside the type, possibly nested
        // (`RefCell<HashMap<…>>`), so scan left for `Ident :` where the
        // `:` is not part of `::` and the ident is not a path segment.
        let mut j = i;
        while j >= 2 {
            let c = &toks[j - 1];
            if c.is_punct(';') || c.is_punct('{') || c.is_punct('}') || c.is_punct('=') {
                break;
            }
            if c.is_punct(':')
                && !toks.get(j).is_some_and(|t| t.is_punct(':'))
                && !(j >= 2 && toks[j - 2].is_punct(':'))
                && toks[j - 2].kind == TokKind::Ident
            {
                push(&toks[j - 2].text);
                break;
            }
            j -= 1;
        }
    }
    idents
}
