//! `msgrate` — small-message rate vs connection count, batching on/off.
//!
//! The CQ-batching tentpole's headline experiment: one client context
//! fans out to N servers, every channel pipelining 64 B RPCs, so all N
//! connections complete into the client's single shared CQ. Two legs per
//! connection count:
//!
//! * **batched** — the defaults: doorbell coalescing on, `poll_cq`
//!   draining up to 64 CQEs per call;
//! * **serial** — `doorbell_coalesce = false`, `cq_poll_batch = 1`: one
//!   doorbell per WR, one CQE per poll, one wakeup per CQE.
//!
//! Reported per leg: sustained message rate (completed RPCs per simulated
//! second) and simulated CPU cycles per message (client `CpuThread` busy
//! nanoseconds divided by completions — the currency the batching saves).
//! Acceptance at the largest fan-out (64 connections): ≥1.3× message rate
//! *or* ≤0.7× cycles/msg, batched over serial. The differential test in
//! `tests/batching.rs` guarantees the two legs do identical work.
//!
//! `XRDMA_MSGRATE_SMOKE=1` shrinks the sweep to {1, 4} connections and
//! drops the speedup gate (tiny runs are dominated by setup).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use xrdma_bench::scenarios::{self, Net};
use xrdma_bench::Report;
use xrdma_core::{XrdmaChannel, XrdmaConfig};
use xrdma_fabric::{FabricConfig, NodeId};
use xrdma_sim::Dur;

const MSG_BYTES: u64 = 64;
const DEPTH: u32 = 8;

fn smoke() -> bool {
    std::env::var("XRDMA_MSGRATE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One measured leg.
struct Leg {
    /// Completed RPCs per simulated second.
    rate: f64,
    /// Client-thread busy nanoseconds per completed RPC.
    cycles_per_msg: f64,
    completed: u64,
}

/// Client on node 0 fans out one channel to each of `conns` servers, all
/// completions landing in the client's one shared CQ; every channel keeps
/// `DEPTH` 64 B RPCs in flight for `span`.
fn run(cfg: &XrdmaConfig, conns: u32, span: Dur, seed: u64) -> Leg {
    let net: Net = scenarios::net(FabricConfig::rack(conns + 1), seed);
    let client = scenarios::ctx(&net, 0, cfg.clone());
    let mut slots = Vec::new();
    let mut servers = Vec::new();
    for i in 1..=conns {
        let server = scenarios::ctx(&net, i, cfg.clone());
        server.listen(9, |ch| {
            ch.set_on_request(|ch2, _msg, tok| {
                ch2.respond_size(tok, MSG_BYTES).ok();
            });
        });
        servers.push(server);
        let slot: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
        let s2 = slot.clone();
        client.connect(NodeId(i), 9, move |r| {
            *s2.borrow_mut() = Some(r.expect("connect"));
        });
        slots.push(slot);
    }
    net.world.run_for(Dur::millis(50));

    let completed = Rc::new(Cell::new(0u64));
    fn pump(ch: &Rc<XrdmaChannel>, done: &Rc<Cell<u64>>) {
        let c2 = ch.clone();
        let d2 = done.clone();
        ch.send_request_size(MSG_BYTES, move |_, _| {
            d2.set(d2.get() + 1);
            pump(&c2, &d2);
        })
        .ok();
    }
    for slot in &slots {
        let ch = slot.borrow().clone().expect("connected");
        for _ in 0..DEPTH {
            pump(&ch, &completed);
        }
    }
    let busy0 = client.thread().total_busy();
    let done0 = completed.get();
    let t0 = net.world.now();
    net.world.run_for(span);
    let elapsed = net.world.now().since(t0).as_secs_f64().max(1e-12);
    let busy = client.thread().total_busy() - busy0;
    let n = completed.get() - done0;
    Leg {
        rate: n as f64 / elapsed,
        cycles_per_msg: busy.as_nanos() as f64 / (n as f64).max(1.0),
        completed: n,
    }
}

fn main() {
    let smoke = smoke();
    let (sweep, span): (&[u32], Dur) = if smoke {
        (&[1, 4], Dur::millis(5))
    } else {
        (&[1, 4, 16, 64], Dur::millis(40))
    };

    let batched_cfg = XrdmaConfig::default();
    let serial_cfg = XrdmaConfig {
        doorbell_coalesce: false,
        cq_poll_batch: 1,
        ..Default::default()
    };

    let mut rep = Report::new(
        "msgrate",
        "64B message rate vs connection count: CQ batching + doorbell coalescing on/off",
    );
    let mut rate_on = Vec::new();
    let mut rate_off = Vec::new();
    let mut cyc_on = Vec::new();
    let mut cyc_off = Vec::new();
    let mut last = None;
    println!("CONNS  MODE     MSGS      RATE(msg/s)   CYCLES/MSG(ns)");
    for &conns in sweep {
        let on = run(&batched_cfg, conns, span, 42);
        let off = run(&serial_cfg, conns, span, 42);
        for (mode, leg) in [("batched", &on), ("serial", &off)] {
            println!(
                "{conns:<6} {mode:<8} {:<9} {:<13.0} {:.0}",
                leg.completed, leg.rate, leg.cycles_per_msg
            );
        }
        rate_on.push((conns as f64, on.rate));
        rate_off.push((conns as f64, off.rate));
        cyc_on.push((conns as f64, on.cycles_per_msg));
        cyc_off.push((conns as f64, off.cycles_per_msg));
        last = Some((conns, on, off));
    }

    let (conns, on, off) = last.expect("non-empty sweep");
    let rate_gain = on.rate / off.rate.max(1e-9);
    let cyc_ratio = on.cycles_per_msg / off.cycles_per_msg.max(1e-9);
    rep.row(
        &format!("message-rate gain at {conns} conns (batched / serial)"),
        ">=1.3x (or cycles/msg <=0.7x)",
        format!("{rate_gain:.2}x rate, {cyc_ratio:.2}x cycles/msg"),
        smoke || rate_gain >= 1.3 || cyc_ratio <= 0.7,
    );
    rep.row(
        &format!("cycles/msg at {conns} conns (batched vs serial)"),
        "batching amortizes doorbells + polls",
        format!(
            "{:.0} vs {:.0} ns/msg",
            on.cycles_per_msg, off.cycles_per_msg
        ),
        smoke || on.cycles_per_msg < off.cycles_per_msg,
    );
    rep.series("msgrate_batched", rate_on);
    rep.series("msgrate_serial", rate_off);
    rep.series("cycles_per_msg_batched", cyc_on);
    rep.series("cycles_per_msg_serial", cyc_off);
    rep.finish();
    if !rep.all_hold() {
        std::process::exit(1);
    }
}
