//! CLI driver: `cargo run -p xrdma-lint -- [workspace-root] [options]`.
//!
//! Options:
//!
//! * `--format text|json` — output format (default `text`). JSON output
//!   is deterministic and stably sorted, suitable for committing
//!   (`results/lint.json`) under the CI golden-diff gate.
//! * `--out PATH` — write the report to a file (relative to the
//!   workspace root) instead of stdout; a one-line human summary still
//!   goes to stdout.
//! * `--baseline PATH` — committed-baseline file to diff against.
//!   Defaults to `crates/lint/lint.baseline` under the workspace root
//!   when that file exists; `--no-baseline` disables the default.
//! * `--write-baseline` — regenerate the baseline file from the current
//!   findings (then review the diff and commit). Exits 0.
//!
//! Exit status: 0 when the workspace is clean — no diagnostics outside
//! the baseline, zero unused allows (A1), zero malformed annotations.
//! 1 otherwise; 2 on usage errors. Stale baseline entries (paid-down
//! debt) are warnings: they never fail the run, but should be deleted.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xrdma_lint::json;

struct Options {
    root: PathBuf,
    json_format: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
}

fn default_root() -> PathBuf {
    // crates/lint/../.. is the workspace root when run via `cargo run -p`.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        json_format: false,
        out: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json_format = true,
                Some("text") => opts.json_format = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out expects a path")?));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline expects a path")?,
                ));
            }
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            root => opts.root = PathBuf::from(root),
        }
    }
    Ok(opts)
}

/// Resolve a possibly root-relative path.
fn under_root(root: &Path, p: &Path) -> PathBuf {
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        root.join(p)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xrdma-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.root.join("Cargo.toml").exists() {
        eprintln!(
            "xrdma-lint: no Cargo.toml at {} — pass the workspace root as the first argument",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let report = xrdma_lint::analyze_workspace(&opts.root);

    let baseline_path = if opts.no_baseline {
        None
    } else {
        let p = opts
            .baseline
            .clone()
            .map(|p| under_root(&opts.root, &p))
            .unwrap_or_else(|| opts.root.join("crates/lint/lint.baseline"));
        // The default baseline is optional; an explicitly passed one is not.
        if p.exists() || opts.baseline.is_some() {
            Some(p)
        } else {
            None
        }
    };

    if opts.write_baseline {
        let path = baseline_path.unwrap_or_else(|| opts.root.join("crates/lint/lint.baseline"));
        let text = json::render_baseline(&report.violations);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("xrdma-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "xrdma-lint: wrote {} entr{} to {}",
            report.violations.len(),
            if report.violations.len() == 1 {
                "y"
            } else {
                "ies"
            },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match &baseline_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => match json::parse_baseline(&text) {
                Ok(entries) => entries,
                Err(lines) => {
                    eprintln!(
                        "xrdma-lint: malformed baseline {} (lines {:?})",
                        p.display(),
                        lines
                    );
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("xrdma-lint: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Vec::new(),
    };
    let diff = json::diff_baseline(&report.violations, &baseline);
    let new_violations: Vec<_> = report
        .violations
        .iter()
        .zip(&diff.baselined)
        .filter(|(_, b)| !**b)
        .map(|(v, _)| v)
        .collect();

    if opts.json_format {
        let doc = json::render_json(&report, &diff);
        match &opts.out {
            Some(out) => {
                let path = under_root(&opts.root, out);
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("xrdma-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => print!("{doc}"),
        }
    } else {
        for v in new_violations.iter() {
            println!("{v}");
        }
        for (file, line) in &report.malformed_allows {
            println!(
                "{}:{}: error [allow-syntax] malformed annotation; expected \
                 `// xrdma-lint: allow(<rule>) -- <reason>` with a non-empty reason",
                file.display(),
                line
            );
        }
        for u in &report.unused_allows {
            println!(
                "{}:{}: error [unused-allow] stale `allow({})` annotation suppresses \
                 nothing — delete it or re-justify it",
                u.file.display(),
                u.line,
                u.rule
            );
        }
        for e in &diff.stale {
            println!(
                "{}: warning [stale-baseline] entry `{}` matches no finding — paid-down \
                 debt, remove it from the baseline",
                e.file, e.rule
            );
        }
    }

    let failures =
        new_violations.len() + report.malformed_allows.len() + report.unused_allows.len();
    let summary = format!(
        "xrdma-lint: {} finding{} ({} baselined, {} new), {} unused allow{}, \
         {} malformed, {} stale baseline entr{}",
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        },
        report.violations.len() - new_violations.len(),
        new_violations.len(),
        report.unused_allows.len(),
        if report.unused_allows.len() == 1 {
            ""
        } else {
            "s"
        },
        report.malformed_allows.len(),
        diff.stale.len(),
        if diff.stale.len() == 1 { "y" } else { "ies" },
    );
    if !opts.json_format || opts.out.is_some() {
        println!("{summary}");
    } else {
        eprintln!("{summary}");
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
