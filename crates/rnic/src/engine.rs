//! The RNIC engine: WQE processing, segmentation, pacing, the wire-protocol
//! state machines, and delivery handling.
//!
//! ## Send path
//!
//! `post_send` appends to the QP's software SQ and activates the QP in the
//! **injector** — a round-robin scheduler over QPs with transmittable work.
//! The injector takes one MTU segment at a time from the head message of
//! each active QP, paced per-QP by DCQCN (`next_allowed`), and hands it to
//! the host's fabric port. The port's staging queue is bounded
//! (`inject_limit_bytes`); when full, the injector parks and re-arms on the
//! port's drain hook. This is what makes a huge WR occupy the pipe (the
//! head-of-line blocking the paper's flow control fragments away) while
//! still letting many QPs interleave at packet granularity.
//!
//! ## Reliability
//!
//! Message-granular go-back-N: the responder accepts the request stream
//! strictly in sequence, ACKs cumulatively, NAKs on a missing receive WR
//! (**RNR**) or a sequence gap, and the requester replays from its unacked
//! window. Retry exhaustion moves the QP to the error state and flushes all
//! outstanding work — the signal X-RDMA's keepalive (§V-A) turns into a
//! connection teardown.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use std::rc::Rc;

use bytes::Bytes;

use xrdma_fabric::packet::{PRIO_CTRL, PRIO_RDMA};
use xrdma_fabric::port::Port;
use xrdma_fabric::{Fabric, NicSink, NodeId, Packet};
use xrdma_sim::{Dur, SimRng, Time, World};
use xrdma_telemetry::{span_mark, tele, SpanToken};

use crate::config::{PageKind, RnicConfig};
use crate::cq::{CompletionQueue, Cqe, CqeOpcode, CqeStatus};
use crate::dcqcn::DcqcnRp;
use crate::mem::{AccessFlags, MemTable, Mr, Pd};
use crate::qp::{PendingAtomic, PendingRead, Qp, QpCaps, RespJob, RxMsg, Srq, TxMsg, UnackedMsg};
use crate::verbs::{Payload, Qpn, SendOp, SendWr, VerbsError};

/// Verdict of an installed packet filter (the analysis framework's fault
/// injector, §VI-C "Emulate Fault").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterVerdict {
    Pass,
    /// Drop the packet silently (emulated loss).
    Drop,
    /// Deliver after an extra delay (emulated slow path).
    Delay(Dur),
}
use crate::wire::{Bth, FragData, NakKind, TokenedBth, WireOp};

/// Aggregate per-NIC counters.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct RnicStats {
    pub data_pkts_tx: u64,
    pub data_bytes_tx: u64,
    pub data_pkts_rx: u64,
    pub data_bytes_rx: u64,
    /// RNR NAKs this NIC generated as a responder.
    pub rnr_naks_sent: u64,
    /// RNR NAKs this NIC received as a requester (Fig 9's counter).
    pub rnr_naks_received: u64,
    pub seq_naks: u64,
    pub retransmissions: u64,
    pub cnps_sent: u64,
    pub cnps_received: u64,
    /// PFC pause edges observed on the host uplink.
    pub pfc_pauses_seen: u64,
    pub qp_cache_misses: u64,
    pub qp_cache_hits: u64,
    pub mr_cache_misses: u64,
    /// Packets dropped because their connection token was stale (a
    /// recycled QP's previous life).
    pub stale_drops: u64,
    /// Packets discarded by an injected receive fault (ICRC corruption or
    /// NIC-level drop; `xrdma-faults`).
    pub fault_rx_drops: u64,
    /// Packets delivered twice by an injected duplication fault.
    pub fault_rx_dups: u64,
    /// Doorbell rings (one per `post_send`, one per posted WR *list*).
    pub doorbells: u64,
    /// Send WRs accepted across all doorbells; `posted_wrs / doorbells`
    /// is the achieved postlist batching factor.
    pub posted_wrs: u64,
}

/// A simple lazy-LRU touch cache modelling on-NIC context SRAM.
struct TouchCache {
    capacity: usize,
    stamp: u64,
    map: HashMap<u32, u64>,
    order: VecDeque<(u64, u32)>,
}

impl TouchCache {
    fn new(capacity: usize) -> TouchCache {
        TouchCache {
            capacity,
            stamp: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Touch a key; returns true on hit.
    fn touch(&mut self, key: u32) -> bool {
        self.stamp += 1;
        let hit = match self.map.get_mut(&key) {
            Some(s) => {
                *s = self.stamp;
                true
            }
            None => {
                self.map.insert(key, self.stamp);
                false
            }
        };
        self.order.push_back((self.stamp, key));
        // Lazy eviction: discard stale order entries, then evict true LRU
        // while above capacity.
        while self.map.len() > self.capacity {
            if let Some((s, k)) = self.order.pop_front() {
                if self.map.get(&k) == Some(&s) {
                    self.map.remove(&k);
                }
            } else {
                break;
            }
        }
        // Also keep the order deque from growing without bound.
        while self.order.len() > self.capacity * 4 + 16 {
            if let Some((s, k)) = self.order.pop_front() {
                if self.map.get(&k) == Some(&s) && self.map.len() > self.capacity {
                    self.map.remove(&k);
                }
            }
        }
        hit
    }
}

/// Injector scheduling state.
struct Injector {
    /// QPs ready to transmit now.
    ready: VecDeque<Qpn>,
    /// Membership for `ready` (avoid duplicates).
    in_ready: HashSet<Qpn>,
    /// Rate-throttled / backed-off QPs keyed by wake time.
    throttled: BinaryHeap<Reverse<(Time, u32)>>,
    in_throttled: HashSet<Qpn>,
    /// A kick event is scheduled.
    kick_armed: bool,
    /// Waiting on the port drain hook.
    parked_on_port: bool,
}

impl Injector {
    fn new() -> Injector {
        Injector {
            ready: VecDeque::new(),
            in_ready: HashSet::new(),
            throttled: BinaryHeap::new(),
            in_throttled: HashSet::new(),
            kick_armed: false,
            parked_on_port: false,
        }
    }
}

/// One simulated RNIC, attached to a fabric host slot.
pub struct Rnic {
    world: Rc<World>,
    node: NodeId,
    /// Keeps the network alive for as long as any NIC exists (ports hold
    /// only weak references to switches).
    fabric: RefCell<Option<Rc<Fabric>>>,
    pub cfg: RnicConfig,
    /// Host uplink port; filled in right after fabric attach.
    port: RefCell<Option<Rc<Port>>>,
    /// Weak self-reference so trait-object callbacks can recover `Rc<Self>`.
    me: RefCell<std::rc::Weak<Rnic>>,
    mem: MemTable,
    qps: RefCell<BTreeMap<Qpn, Rc<Qp>>>,
    next_qpn: Cell<u32>,
    next_cq: Cell<u32>,
    next_srq: Cell<u32>,
    injector: RefCell<Injector>,
    /// QPs recovering from a rate cut, ticked by the DCQCN timer.
    congested: RefCell<BTreeSet<Qpn>>,
    /// The shared DCQCN alpha/increase tick. Lazily created on the first
    /// congestion event; the closure is boxed once and re-armed in place.
    dcqcn_timer: RefCell<Option<xrdma_sim::Timer>>,
    qp_cache: RefCell<TouchCache>,
    mr_cache: RefCell<TouchCache>,
    /// When the shared QP-context fetch unit is next free. Cache misses
    /// ride a single ICM/PCIe engine, so concurrent misses queue behind
    /// each other NIC-wide: past the SRAM working set it is the fetch
    /// unit's *bandwidth*, not its latency, that caps message rate.
    ctx_fetch_free: Cell<Time>,
    stats: RefCell<RnicStats>,
    alive: Cell<bool>,
    /// Host uplink pause state per priority (observability).
    paused_prios: RefCell<[bool; 8]>,
    /// Non-RDMA traffic handler (the TCP model registers here).
    alt_sink: RefCell<Option<Box<dyn Fn(Packet)>>>,
    /// Receive-side fault-injection filter (Linux netfilter does not work
    /// on the RDMA data plane — §III — so the middleware provides one).
    filter: RefCell<Option<Box<dyn Fn(&Packet) -> FilterVerdict>>>,
    /// Packets dropped / delayed by the filter (stats).
    pub filtered_drops: Cell<u64>,
    pub filtered_delays: Cell<u64>,
    /// Arrivals buffered while a `PeerPause` fault window freezes this
    /// node; replayed in order on resume.
    #[cfg(feature = "faults")]
    paused_rx: RefCell<VecDeque<Packet>>,
    #[allow(dead_code)]
    rng: RefCell<SimRng>,
}

impl Rnic {
    /// Create an RNIC and attach it to `node`'s slot on the fabric.
    pub fn new(fabric: &Rc<Fabric>, node: NodeId, cfg: RnicConfig, rng: SimRng) -> Rc<Rnic> {
        let world = fabric.world().clone();
        let rnic = Rc::new(Rnic {
            world,
            node,
            fabric: RefCell::new(None),
            qp_cache: RefCell::new(TouchCache::new(cfg.qp_cache_entries)),
            mr_cache: RefCell::new(TouchCache::new(cfg.mr_cache_entries)),
            ctx_fetch_free: Cell::new(Time::ZERO),
            cfg,
            port: RefCell::new(None),
            me: RefCell::new(std::rc::Weak::new()),
            mem: MemTable::new(node.0),
            qps: RefCell::new(BTreeMap::new()),
            next_qpn: Cell::new(1),
            next_cq: Cell::new(1),
            next_srq: Cell::new(1),
            injector: RefCell::new(Injector::new()),
            congested: RefCell::new(BTreeSet::new()),
            dcqcn_timer: RefCell::new(None),
            stats: RefCell::new(RnicStats::default()),
            alive: Cell::new(true),
            paused_prios: RefCell::new([false; 8]),
            alt_sink: RefCell::new(None),
            filter: RefCell::new(None),
            filtered_drops: Cell::new(0),
            filtered_delays: Cell::new(0),
            #[cfg(feature = "faults")]
            paused_rx: RefCell::new(VecDeque::new()),
            rng: RefCell::new(rng),
        });
        // Attach: fabric hands us our uplink port; we hand it our sink.
        *rnic.me.borrow_mut() = Rc::downgrade(&rnic);
        let port = fabric.attach_host(node, rnic.clone() as Rc<dyn NicSink>);
        *rnic.port.borrow_mut() = Some(port);
        *rnic.fabric.borrow_mut() = Some(fabric.clone());
        // Let the fault injector steer this node (crash/pause/QP error).
        #[cfg(feature = "faults")]
        {
            let weak = Rc::downgrade(&rnic);
            xrdma_faults::register_node(
                node.0,
                // xrdma-lint: allow(hot-path-alloc) -- one registration at NIC construction
                Box::new(move |cmd| {
                    if let Some(r) = weak.upgrade() {
                        r.fault_cmd(cmd);
                    }
                }),
            );
        }
        rnic
    }

    /// The fabric this NIC is attached to.
    pub fn fabric(&self) -> Rc<Fabric> {
        // xrdma-lint: allow(unwrap-in-api) -- set unconditionally in Rnic::new before the Rc escapes
        self.fabric.borrow().as_ref().expect("attached").clone()
    }

    /// The host uplink port (available after construction).
    pub fn port(&self) -> Rc<Port> {
        // xrdma-lint: allow(unwrap-in-api) -- set unconditionally in Rnic::new before the Rc escapes
        self.port.borrow().as_ref().expect("port installed").clone()
    }

    /// Register a handler for non-RDMA packets arriving at this host (the
    /// TCP model rides the same fabric attachment).
    pub fn set_alt_sink(&self, f: impl Fn(Packet) + 'static) {
        // xrdma-lint: allow(hot-path-alloc) -- sink installed once at setup
        *self.alt_sink.borrow_mut() = Some(Box::new(f));
    }

    /// Install a receive-side packet filter (fault injection). At most one
    /// filter is active; installing replaces the previous one.
    pub fn set_filter(&self, f: impl Fn(&Packet) -> FilterVerdict + 'static) {
        // xrdma-lint: allow(hot-path-alloc) -- filter installed once at setup
        *self.filter.borrow_mut() = Some(Box::new(f));
    }

    /// Remove the packet filter.
    pub fn clear_filter(&self) {
        *self.filter.borrow_mut() = None;
    }

    /// Host uplink PFC pause state (observability; XR-Stat exports it).
    pub fn is_prio_paused(&self, prio: u8) -> bool {
        self.paused_prios.borrow()[prio as usize]
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn world(&self) -> &Rc<World> {
        &self.world
    }

    pub fn mem(&self) -> &MemTable {
        &self.mem
    }

    pub fn stats(&self) -> RnicStats {
        *self.stats.borrow()
    }

    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }

    /// Simulate a machine crash: the NIC stops responding entirely. Peers
    /// only find out through their own timeouts (§III Robustness Issue 2).
    pub fn crash(&self) {
        self.alive.set(false);
    }

    /// Power the node back on with clean NIC state (QPs stay in ERROR /
    /// RESET; connections must be re-established).
    pub fn restart(&self) {
        self.alive.set(true);
        for qp in self.qps.borrow().values() {
            qp.modify_to_reset();
        }
    }

    // ------------------------------------------------------------------
    // Verbs object management
    // ------------------------------------------------------------------

    pub fn alloc_pd(&self) -> Rc<Pd> {
        self.mem.alloc_pd()
    }

    /// Register RDMA-enabled memory. `backed` materializes real bytes,
    /// `high` places it in the isolated high address range (§VI-C).
    pub fn reg_mr(
        &self,
        pd: &Pd,
        len: u64,
        access: AccessFlags,
        kind: PageKind,
        backed: bool,
        high: bool,
    ) -> Rc<Mr> {
        self.mem.reg_mr(pd, len, access, kind, backed, high)
    }

    pub fn dereg_mr(&self, mr: &Rc<Mr>) {
        self.mem.dereg_mr(mr);
    }

    /// Host-side cost of registering `len` bytes in the given page mode
    /// (§VII-F memory-mode experiment). The middleware charges this to its
    /// CPU thread.
    ///
    /// Continuous allocations hunt for physically contiguous ranges: the
    /// cost grows with how much memory the host has already pinned (a
    /// fragmentation proxy) — on long-running servers this "will cause
    /// out-of-memory issue and trigger memory recycling in kernel" (§VII-F).
    pub fn reg_mr_cost(&self, len: u64, kind: PageKind) -> Dur {
        let pages = match kind {
            PageKind::Anonymous => len.div_ceil(4096),
            PageKind::Continuous => 1,
            PageKind::Huge => len.div_ceil(2 * 1024 * 1024),
        };
        let base = match kind {
            PageKind::Anonymous => Dur::micros(90),
            PageKind::Continuous => {
                // Fragmentation pressure: each pinned 64 MiB multiplies the
                // compaction/reclaim work.
                let pressure = 1.0 + self.mem.registered_bytes() as f64 / (64.0 * 1024.0 * 1024.0);
                Dur::secs_f64(260e-6 * pressure.min(40.0))
            }
            PageKind::Huge => Dur::micros(130),
        };
        base + Dur::nanos(220) * pages
    }

    pub fn create_cq(&self, depth: usize) -> Rc<CompletionQueue> {
        let id = self.next_cq.get();
        self.next_cq.set(id + 1);
        CompletionQueue::new(id, depth)
    }

    pub fn create_srq(&self, depth: usize) -> Rc<Srq> {
        let id = self.next_srq.get();
        self.next_srq.set(id + 1);
        Srq::new(id, depth)
    }

    pub fn create_qp(
        &self,
        pd: &Pd,
        send_cq: Rc<CompletionQueue>,
        recv_cq: Rc<CompletionQueue>,
        caps: QpCaps,
        srq: Option<Rc<Srq>>,
    ) -> Rc<Qp> {
        let qpn = Qpn(self.next_qpn.get());
        self.next_qpn.set(qpn.0 + 1);
        let qp = Qp::new(
            qpn,
            pd.id,
            caps,
            send_cq,
            recv_cq,
            srq,
            DcqcnRp::new(self.cfg.dcqcn),
        );
        self.qps.borrow_mut().insert(qpn, qp.clone());
        qp
    }

    pub fn destroy_qp(&self, qp: &Rc<Qp>) {
        qp.modify_to_reset();
        qp.send_cq.deregister_qp(qp.qpn);
        qp.recv_cq.deregister_qp(qp.qpn);
        self.qps.borrow_mut().remove(&qp.qpn);
    }

    pub fn qp(&self, qpn: Qpn) -> Option<Rc<Qp>> {
        self.qps.borrow().get(&qpn).cloned()
    }

    pub fn qp_count(&self) -> usize {
        self.qps.borrow().len()
    }

    // ------------------------------------------------------------------
    // Posting
    // ------------------------------------------------------------------

    /// Post a send-queue work request.
    pub fn post_send(self: &Rc<Self>, qp: &Rc<Qp>, wr: SendWr) -> Result<(), VerbsError> {
        if !qp.can_send() {
            return Err(VerbsError::InvalidState("post_send requires RTS"));
        }
        wr.validate()?;
        span_mark!(wr.span, Doorbell);
        {
            let mut tx = qp.tx.borrow_mut();
            if tx.sq.len() >= qp.caps.max_send_wr {
                return Err(VerbsError::QueueFull);
            }
            tx.sq.push_back(wr);
        }
        self.activate(qp.qpn, Time::ZERO);
        {
            let mut st = self.stats.borrow_mut();
            st.doorbells += 1;
            st.posted_wrs += 1;
        }
        Ok(())
    }

    /// Post a chained list of send work requests, ringing one doorbell
    /// (`ibv_post_send` with a linked WR list). All-or-nothing: every WR is
    /// validated and the queue capacity checked before any is enqueued, so
    /// a rejected postlist leaves the send queue untouched.
    pub fn post_send_list(
        self: &Rc<Self>,
        qp: &Rc<Qp>,
        wrs: Vec<SendWr>,
    ) -> Result<(), VerbsError> {
        if wrs.is_empty() {
            return Ok(());
        }
        if !qp.can_send() {
            return Err(VerbsError::InvalidState("post_send requires RTS"));
        }
        SendWr::validate_all(&wrs)?;
        for _wr in &wrs {
            span_mark!(_wr.span, Doorbell);
        }
        {
            let mut tx = qp.tx.borrow_mut();
            if tx.sq.len() + wrs.len() > qp.caps.max_send_wr {
                return Err(VerbsError::QueueFull);
            }
            let n = wrs.len() as u64;
            tx.sq.extend(wrs);
            let mut st = self.stats.borrow_mut();
            st.doorbells += 1;
            st.posted_wrs += n;
        }
        self.activate(qp.qpn, Time::ZERO);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Injector
    // ------------------------------------------------------------------

    /// Mark a QP as having transmittable work no earlier than `not_before`
    /// (absolute; `Time::ZERO` = now).
    fn activate(self: &Rc<Self>, qpn: Qpn, not_before: Time) {
        {
            let mut inj = self.injector.borrow_mut();
            if inj.in_ready.contains(&qpn) {
                return;
            }
            if not_before > self.world.now() {
                if inj.in_throttled.insert(qpn) {
                    inj.throttled.push(Reverse((not_before, qpn.0)));
                }
            } else {
                inj.in_throttled.remove(&qpn);
                inj.in_ready.insert(qpn);
                inj.ready.push_back(qpn);
            }
        }
        self.arm_kick(Time::ZERO);
    }

    /// Schedule an injector pass (immediately or at `at`).
    fn arm_kick(self: &Rc<Self>, at: Time) {
        {
            let inj = self.injector.borrow();
            if inj.kick_armed || inj.parked_on_port {
                return;
            }
        }
        self.injector.borrow_mut().kick_armed = true;
        let me = self.clone();
        let at = at.max(self.world.now());
        self.world.schedule_at(at, move || {
            me.injector.borrow_mut().kick_armed = false;
            me.injector_pass();
        });
    }

    /// One injector pass: drain ready QPs until the port fills, rate limits
    /// bite, or there is no work.
    fn injector_pass(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        loop {
            let now = self.world.now();
            // Wake throttled QPs whose time has come.
            loop {
                let wake = {
                    let inj = self.injector.borrow();
                    match inj.throttled.peek() {
                        Some(&Reverse((t, q))) if t <= now => Some(Qpn(q)),
                        _ => None,
                    }
                };
                match wake {
                    Some(q) => {
                        let mut inj = self.injector.borrow_mut();
                        inj.throttled.pop();
                        if inj.in_throttled.remove(&q) && !inj.in_ready.contains(&q) {
                            inj.in_ready.insert(q);
                            inj.ready.push_back(q);
                        }
                    }
                    None => break,
                }
            }

            // Port backpressure.
            if self.port().total_queued() >= self.cfg.inject_limit_bytes {
                let me = self.clone();
                self.injector.borrow_mut().parked_on_port = true;
                let limit = self.cfg.inject_limit_bytes;
                self.port().arm_drain_hook(limit / 2, move || {
                    me.injector.borrow_mut().parked_on_port = false;
                    me.arm_kick(Time::ZERO);
                });
                return;
            }

            let popped = self.injector.borrow_mut().ready.pop_front();
            let qpn = match popped {
                Some(q) => q,
                None => {
                    // Nothing ready; wake at the earliest throttled QP.
                    let next = self
                        .injector
                        .borrow()
                        .throttled
                        .peek()
                        .map(|&Reverse((t, _))| t);
                    if let Some(t) = next {
                        self.arm_kick(t);
                    }
                    return;
                }
            };
            self.injector.borrow_mut().in_ready.remove(&qpn);

            let Some(qp) = self.qp(qpn) else { continue };
            match self.transmit_one(&qp) {
                TxOutcome::Sent => {
                    // Re-enqueue according to the new pacing deadline.
                    let t = qp.next_allowed.get();
                    if self.qp_has_tx_work(&qp) {
                        self.requeue(qpn, t);
                    }
                }
                TxOutcome::NotBefore(t) => self.requeue(qpn, t),
                TxOutcome::Idle => {}
            }
        }
    }

    fn requeue(self: &Rc<Self>, qpn: Qpn, not_before: Time) {
        let mut inj = self.injector.borrow_mut();
        if not_before > self.world.now() {
            if inj.in_throttled.insert(qpn) {
                inj.throttled.push(Reverse((not_before, qpn.0)));
            }
        } else if inj.in_ready.insert(qpn) {
            inj.ready.push_back(qpn);
        }
    }

    /// Does the QP have anything to put on the wire right now?
    fn qp_has_tx_work(&self, qp: &Rc<Qp>) -> bool {
        let tx = qp.tx.borrow();
        if !tx.resp.is_empty() || !tx.retx.is_empty() || tx.cur.is_some() {
            return true;
        }
        // Starting a new message requires window room.
        !tx.sq.is_empty() && self.window_room(&tx)
    }

    fn window_room(&self, tx: &crate::qp::TxState) -> bool {
        tx.unacked.len() + tx.pending_reads.len() + tx.pending_atomics.len()
            < self.cfg.max_inflight_msgs
    }

    /// Charge one QP-context fetch against the shared ICM/PCIe engine and
    /// return the delay this caller observes.
    ///
    /// A single fetch unit serves all QPs on the NIC, so concurrent misses
    /// queue behind each other: a lone miss still costs `qp_cache_miss`,
    /// but once the working set blows past the SRAM the fetch unit's
    /// *bandwidth* (1 / qp_cache_miss fetches per second) becomes the
    /// message-rate ceiling, which is the cliff the mux is built to avoid.
    fn charge_ctx_fetch(&self) -> Dur {
        let now = self.world.now();
        let free = self.ctx_fetch_free.get().max(now);
        let done = free + self.cfg.qp_cache_miss;
        self.ctx_fetch_free.set(done);
        done.since(now)
    }

    /// Transmit at most one segment for this QP.
    fn transmit_one(self: &Rc<Self>, qp: &Rc<Qp>) -> TxOutcome {
        if !qp.can_send() {
            return TxOutcome::Idle;
        }
        let now = self.world.now();
        let allowed = qp.next_allowed.get().max(qp.tx.borrow().backoff_until);
        if allowed > now {
            return TxOutcome::NotBefore(allowed);
        }

        // QP-context SRAM model: a cold QP pays the miss penalty once per
        // touch streak.
        let mut pipeline = Dur::ZERO;
        {
            let hit = self.qp_cache.borrow_mut().touch(qp.qpn.0);
            qp.note_ctx_cache(hit);
            let mut st = self.stats.borrow_mut();
            if hit {
                st.qp_cache_hits += 1;
            } else {
                st.qp_cache_misses += 1;
                drop(st);
                pipeline += self.charge_ctx_fetch();
            }
        }

        // Priority 1: responder jobs (read responses / atomic replies).
        if let Some(seg) = self.next_resp_segment(qp) {
            self.emit(qp, seg, pipeline);
            return TxOutcome::Sent;
        }
        // Priority 2: retransmissions.
        if qp.tx.borrow().retx.front().is_some() {
            let seg = self.next_msg_segment(qp, true);
            match seg {
                Some(seg) => {
                    self.emit(qp, seg, pipeline);
                    return TxOutcome::Sent;
                }
                None => return TxOutcome::Idle,
            }
        }
        // Priority 3: current / new messages.
        {
            let mut tx = qp.tx.borrow_mut();
            if tx.cur.is_none() {
                if tx.sq.is_empty() {
                    return TxOutcome::Idle;
                }
                if !self.window_room(&tx) {
                    // Window full: an ACK will re-activate us.
                    return TxOutcome::Idle;
                }
                let wr = tx.sq.pop_front().expect("checked non-empty");
                let seq = tx.next_seq;
                tx.next_seq += 1;
                tx.cur = Some(TxMsg {
                    wr,
                    seq,
                    sent_off: 0,
                    started: false,
                    retries: 0,
                    gather: None,
                });
            }
        }
        match self.next_msg_segment(qp, false) {
            Some(seg) => {
                self.emit(qp, seg, pipeline);
                TxOutcome::Sent
            }
            None => TxOutcome::Idle,
        }
    }

    /// Build the next fragment of the active (or retransmitting) message.
    fn next_msg_segment(self: &Rc<Self>, qp: &Rc<Qp>, retx: bool) -> Option<Seg> {
        let now = self.world.now();
        let mut tx = qp.tx.borrow_mut();
        let msg = if retx {
            tx.retx.front_mut()?
        } else {
            tx.cur.as_mut()?
        };
        let mut extra = Dur::ZERO;
        if !msg.started {
            msg.started = true;
            extra += self.cfg.wqe_process;
            // Retransmits reset `started`, so a replay re-enters the WQE
            // stage — the span's stage residencies accumulate per stage.
            span_mark!(msg.wr.span, Wqe);
        }
        let (remote_node, _remote_qpn) = qp.remote().expect("RTS implies remote");
        let dst_qpn = qp.remote().unwrap().1;
        let seq = msg.seq;

        // Read and atomic requests are single-packet.
        match &msg.wr.op {
            SendOp::Read => {
                let (raddr, rkey) = msg.wr.remote.unwrap();
                let len = msg.wr.payload.len();
                let wr = msg.wr.clone();
                if retx {
                    tx.retx.pop_front();
                } else {
                    tx.cur = None;
                }
                tx.pending_reads.entry(seq).or_insert(PendingRead {
                    wr_id: wr.wr_id,
                    local: wr.local.unwrap(),
                    remote: (raddr, rkey),
                    total: len,
                    received: 0,
                    issued_at: now,
                    retries: 0,
                    signaled: wr.signaled,
                });
                if let Some(p) = tx.pending_reads.get_mut(&seq) {
                    p.received = 0;
                    p.issued_at = now;
                }
                drop(tx);
                self.arm_retx_timer(qp);
                return Some(Seg {
                    bth: Bth::ReadReq {
                        dst_qpn,
                        src_qpn: qp.qpn,
                        msg_seq: seq,
                        remote_addr: raddr,
                        rkey,
                        len,
                    },
                    wire_payload: 16,
                    dst: remote_node,
                    extra,
                    prio: PRIO_RDMA,
                    span: SpanToken::NONE,
                });
            }
            SendOp::FetchAdd(operand) => {
                let (raddr, rkey) = msg.wr.remote.unwrap();
                let wr = msg.wr.clone();
                let operand = *operand;
                if retx {
                    tx.retx.pop_front();
                } else {
                    tx.cur = None;
                }
                tx.pending_atomics.insert(
                    seq,
                    PendingAtomic {
                        wr_id: wr.wr_id,
                        local: wr.local.unwrap(),
                        issued_at: now,
                        signaled: wr.signaled,
                    },
                );
                drop(tx);
                self.arm_retx_timer(qp);
                return Some(Seg {
                    bth: Bth::AtomicReq {
                        dst_qpn,
                        src_qpn: qp.qpn,
                        msg_seq: seq,
                        remote_addr: raddr,
                        rkey,
                        compare: None,
                        operand,
                    },
                    wire_payload: 28,
                    dst: remote_node,
                    extra,
                    prio: PRIO_RDMA,
                    span: SpanToken::NONE,
                });
            }
            SendOp::CompareSwap { expect, swap } => {
                let (raddr, rkey) = msg.wr.remote.unwrap();
                let wr = msg.wr.clone();
                let (expect, swap) = (*expect, *swap);
                if retx {
                    tx.retx.pop_front();
                } else {
                    tx.cur = None;
                }
                tx.pending_atomics.insert(
                    seq,
                    PendingAtomic {
                        wr_id: wr.wr_id,
                        local: wr.local.unwrap(),
                        issued_at: now,
                        signaled: wr.signaled,
                    },
                );
                drop(tx);
                self.arm_retx_timer(qp);
                return Some(Seg {
                    bth: Bth::AtomicReq {
                        dst_qpn,
                        src_qpn: qp.qpn,
                        msg_seq: seq,
                        remote_addr: raddr,
                        rkey,
                        compare: Some(expect),
                        operand: swap,
                    },
                    wire_payload: 28,
                    dst: remote_node,
                    extra,
                    prio: PRIO_RDMA,
                    span: SpanToken::NONE,
                });
            }
            SendOp::Send | SendOp::Write | SendOp::WriteImm => {}
        }

        // Streaming ops: take one MTU fragment.
        let total = msg.wr.payload.len();
        let off = msg.sent_off;
        let frag_len = ((total - off).min(self.cfg.mtu as u64)) as u32;
        let last = off + frag_len as u64 >= total;
        let data = match &msg.wr.payload {
            Payload::Zero(_) => FragData::Zero(frag_len),
            Payload::Inline(b) => {
                FragData::Bytes(b.slice(off as usize..(off + frag_len as u64) as usize))
            }
            Payload::Padded { head, total: _ } => {
                let hlen = head.len() as u64;
                if off < hlen {
                    let real_end = hlen.min(off + frag_len as u64);
                    FragData::Padded {
                        head: head.slice(off as usize..real_end as usize),
                        pad: frag_len - (real_end - off) as u32,
                    }
                } else {
                    FragData::Zero(frag_len)
                }
            }
            Payload::FromMr { addr, lkey, .. } => {
                // Local gather: resolve lkey and validate this fragment's
                // range per MTU (deregistration mid-message must fail on
                // the same fragment it used to), but copy the message out
                // of the MR only once — later fragments slice the shared
                // gather buffer instead of re-allocating.
                match self.mem.by_lkey(*lkey) {
                    Some(mr) => {
                        if mr.check(addr + off, frag_len as u64).is_err() {
                            drop(tx);
                            self.local_wr_failure(qp, retx);
                            return None;
                        }
                        if msg.gather.is_none() {
                            msg.gather = mr.read_bytes(*addr, total).ok();
                        }
                        match &msg.gather {
                            Some(g) => FragData::Bytes(
                                g.slice(off as usize..(off + frag_len as u64) as usize),
                            ),
                            // A WR whose full range is invalid but whose
                            // current fragment is fine keeps the old
                            // per-fragment copy, so failures still surface
                            // on the exact fragment that crosses the edge.
                            // xrdma-lint: allow(hot-path-alloc) -- rare partial-bounds fallback, not the steady-state path
                            None => FragData::Bytes(Bytes::from(
                                mr.read(addr + off, frag_len as u64)
                                    .expect("fragment range checked above"),
                            )),
                        }
                    }
                    None => {
                        drop(tx);
                        self.local_wr_failure(qp, retx);
                        return None;
                    }
                }
            }
        };
        let op = match msg.wr.op {
            SendOp::Send => WireOp::Send,
            SendOp::Write => WireOp::Write,
            SendOp::WriteImm => WireOp::WriteImm,
            _ => unreachable!(),
        };
        let bth = Bth::Data {
            dst_qpn,
            src_qpn: qp.qpn,
            msg_seq: seq,
            op,
            frag_off: off,
            total_len: total,
            last,
            remote: msg.wr.remote,
            imm: msg.wr.imm,
            data,
        };
        msg.sent_off = off + frag_len as u64;
        // Only the final fragment carries the span across the wire — one
        // hop/RX record per message, not per MTU fragment.
        let seg_span = if last { msg.wr.span } else { SpanToken::NONE };
        if last {
            // Message fully on the wire: move to the unacked window.
            let msg = if retx {
                tx.retx.pop_front().unwrap()
            } else {
                tx.cur.take().unwrap()
            };
            let retries = msg.retries;
            // On retransmit the entry may still exist; replace it.
            tx.unacked.retain(|u| u.seq != msg.seq);
            let pos = tx.unacked.partition_point(|u| u.seq < msg.seq);
            tx.unacked.insert(
                pos,
                UnackedMsg {
                    wr: msg.wr,
                    seq: msg.seq,
                    sent_at: now,
                    retries,
                },
            );
            drop(tx);
            self.arm_retx_timer(qp);
        }
        Some(Seg {
            bth,
            wire_payload: frag_len,
            dst: remote_node,
            extra,
            prio: PRIO_RDMA,
            span: seg_span,
        })
    }

    /// Build the next responder segment (read response / atomic reply).
    fn next_resp_segment(self: &Rc<Self>, qp: &Rc<Qp>) -> Option<Seg> {
        let (remote_node, remote_qpn) = qp.remote()?;
        let mut tx = qp.tx.borrow_mut();
        let job = tx.resp.front_mut()?;
        match job {
            RespJob::Atomic { req_seq, old_value } => {
                let bth = Bth::AtomicResp {
                    dst_qpn: remote_qpn,
                    msg_seq: *req_seq,
                    old_value: *old_value,
                };
                tx.resp.pop_front();
                Some(Seg {
                    bth,
                    wire_payload: 8,
                    dst: remote_node,
                    extra: Dur::ZERO,
                    prio: PRIO_RDMA,
                    span: SpanToken::NONE,
                })
            }
            RespJob::Read {
                req_seq,
                addr,
                len,
                sent_off,
                data,
            } => {
                let off = *sent_off;
                let frag_len = ((*len - off).min(self.cfg.mtu as u64)) as u32;
                let last = off + frag_len as u64 >= *len;
                let frag = match data {
                    // Zero-copy: each response fragment is a refcounted
                    // window into the buffer captured at accept time.
                    Some(bytes) => {
                        FragData::Bytes(bytes.slice(off as usize..(off + frag_len as u64) as usize))
                    }
                    None => FragData::Zero(frag_len),
                };
                let bth = Bth::ReadResp {
                    dst_qpn: remote_qpn,
                    msg_seq: *req_seq,
                    frag_off: off,
                    total_len: *len,
                    last,
                    data: frag,
                };
                let _ = addr;
                *sent_off = off + frag_len as u64;
                if last {
                    tx.resp.pop_front();
                }
                Some(Seg {
                    bth,
                    wire_payload: frag_len,
                    dst: remote_node,
                    extra: Dur::ZERO,
                    prio: PRIO_RDMA,
                    span: SpanToken::NONE,
                })
            }
        }
    }

    /// Put a segment on the wire and update pacing/accounting.
    fn emit(self: &Rc<Self>, qp: &Rc<Qp>, seg: Seg, pipeline: Dur) {
        let now = self.world.now();
        let wire_size = self.cfg.packet_size(seg.wire_payload);
        {
            let mut st = self.stats.borrow_mut();
            st.data_pkts_tx += 1;
            st.data_bytes_tx += seg.wire_payload as u64;
        }
        // DCQCN byte accounting + pacing.
        let rate = if self.cfg.dcqcn_enabled {
            let mut rp = qp.rp.borrow_mut();
            rp.on_bytes_sent(now, wire_size as u64);
            rp.rate_gbps()
        } else {
            qp.rp.borrow().rate_gbps()
        };
        let delay = pipeline + seg.extra;
        let pace = xrdma_sim::time::wire_time(wire_size as u64, rate);
        qp.next_allowed.set(now + delay + pace);

        let mut pkt = Packet::new(
            self.node,
            seg.dst,
            seg.prio,
            wire_size,
            qp.flow_hash(),
            // xrdma-lint: allow(hot-path-alloc) -- the one Box per packet: `Packet.body` is Box<dyn Any> by design
            Box::new(TokenedBth {
                token: qp.conn_token(),
                bth: seg.bth,
            }) as Box<dyn Any>,
        );
        pkt.span = seg.span;
        if delay == Dur::ZERO {
            // The WQE stage ends when the last fragment actually reaches
            // the wire, so pipeline/pacing delays land in `wqe`, not
            // `fabric`.
            span_mark!(pkt.span, Fabric);
            self.port().send(pkt);
        } else {
            let port = self.port();
            self.world.schedule_in(delay, move || {
                span_mark!(pkt.span, Fabric);
                port.send(pkt);
            });
        }
    }

    /// A local gather failure (bad lkey / bounds): complete the WR in error
    /// and move the QP to the error state, flushing outstanding work.
    fn local_wr_failure(self: &Rc<Self>, qp: &Rc<Qp>, retx: bool) {
        let msg = {
            let mut tx = qp.tx.borrow_mut();
            if retx {
                tx.retx.pop_front()
            } else {
                tx.cur.take()
            }
        };
        if let Some(msg) = msg {
            self.push_cqe(
                &qp.send_cq,
                Cqe {
                    wr_id: msg.wr.wr_id,
                    status: CqeStatus::RemoteAccessError,
                    opcode: op_to_cqe(&msg.wr.op),
                    byte_len: 0,
                    imm: None,
                    qpn: qp.qpn,
                    span: msg.wr.span,
                },
            );
        }
        self.fail_qp(qp, CqeStatus::WrFlushError);
    }

    // ------------------------------------------------------------------
    // Control-plane sends (bypass pacing; tiny packets)
    // ------------------------------------------------------------------

    fn send_ctrl(self: &Rc<Self>, qp: &Rc<Qp>, bth: Bth, wire_payload: u32, prio: u8) {
        let Some((remote_node, _)) = qp.remote() else {
            return;
        };
        let pkt = Packet::new(
            self.node,
            remote_node,
            prio,
            self.cfg.packet_size(wire_payload),
            qp.flow_hash(),
            // xrdma-lint: allow(hot-path-alloc) -- the one Box per packet: `Packet.body` is Box<dyn Any> by design
            Box::new(TokenedBth {
                token: qp.conn_token(),
                bth,
            }) as Box<dyn Any>,
        );
        self.port().send(pkt);
    }

    // ------------------------------------------------------------------
    // Retransmission machinery
    // ------------------------------------------------------------------

    fn arm_retx_timer(self: &Rc<Self>, qp: &Rc<Qp>) {
        let mut tx = qp.tx.borrow_mut();
        if tx.retx_timer.as_ref().is_some_and(|t| t.is_armed()) {
            return;
        }
        if tx.unacked.is_empty() && tx.pending_reads.is_empty() && tx.pending_atomics.is_empty() {
            return;
        }
        if tx.retx_timer.is_none() {
            // Weak on both: the slab slot must not pin the QP or RNIC.
            let me = self.me.borrow().clone();
            let q = Rc::downgrade(qp);
            tx.retx_timer = Some(self.world.timer(move || {
                if let (Some(me), Some(q)) = (me.upgrade(), q.upgrade()) {
                    me.retx_timer_fired(&q);
                }
            }));
        }
        let timeout = self.cfg.retx_timeout;
        tx.retx_timer
            .as_ref()
            .expect("just installed")
            .arm_in(timeout);
    }

    fn retx_timer_fired(self: &Rc<Self>, qp: &Rc<Qp>) {
        if !self.alive.get() || !qp.can_send() {
            return;
        }
        let now = self.world.now();
        let timeout = self.cfg.retx_timeout;
        let oldest = {
            let tx = qp.tx.borrow();
            let a = tx.unacked.front().map(|u| u.sent_at);
            let b = tx.pending_reads.values().map(|p| p.issued_at).min();
            let c = tx.pending_atomics.values().map(|p| p.issued_at).min();
            [a, b, c].into_iter().flatten().min()
        };
        let Some(oldest) = oldest else { return };
        if now.since(oldest) >= timeout {
            self.go_back_retransmit(qp, None, false);
        }
        self.arm_retx_timer(qp);
    }

    /// Go-back-N: replay unacked messages (and reissue pending reads /
    /// atomics). `from_seq` limits the rollback start (NAK case); `rnr`
    /// marks this as receiver-not-ready (affects counters/backoff).
    fn go_back_retransmit(self: &Rc<Self>, qp: &Rc<Qp>, from_seq: Option<u64>, rnr: bool) {
        let now = self.world.now();
        let exceeded = {
            let mut tx = qp.tx.borrow_mut();
            let start = from_seq.unwrap_or(0);

            // Replay queue: unacked (>= start) in order, then the partially
            // sent current message, then anything already queued for retx.
            let mut replay: VecDeque<TxMsg> = VecDeque::new();
            let mut exceeded = false;
            let mut kept: VecDeque<UnackedMsg> = VecDeque::new();
            // Only the *head* of the rollback charges its retry budget —
            // like real RC, which counts retries per stalled PSN, not per
            // message swept up in the go-back. Later messages replay for
            // free; they were collateral, not the cause.
            let mut head_charged = false;
            while let Some(mut u) = tx.unacked.pop_front() {
                if u.seq < start {
                    kept.push_back(u);
                    continue;
                }
                if !head_charged {
                    head_charged = true;
                    u.retries += 1;
                    if u.retries > self.cfg.retry_count {
                        exceeded = true;
                    }
                }
                replay.push_back(TxMsg {
                    wr: u.wr.clone(),
                    seq: u.seq,
                    sent_off: 0,
                    started: false,
                    retries: u.retries,
                    gather: None,
                });
                // Keep window entry out; it is re-inserted when resent.
            }
            tx.unacked = kept;
            if let Some(mut cur) = tx.cur.take() {
                cur.sent_off = 0;
                cur.started = false;
                if !head_charged {
                    head_charged = true;
                    cur.retries += 1;
                    if cur.retries > self.cfg.retry_count {
                        exceeded = true;
                    }
                }
                replay.push_back(cur);
            }
            let old_retx = std::mem::take(&mut tx.retx);
            for m in old_retx {
                if replay.iter().all(|r| r.seq != m.seq) {
                    replay.push_back(m);
                }
            }
            // Reissue pending reads / atomics that fall in the replayed
            // range (their requests or responses may have been lost).
            let mut read_seqs: Vec<u64> = tx
                .pending_reads
                .iter()
                .filter(|(s, p)| **s >= start && now.since(p.issued_at) >= Dur::ZERO)
                .map(|(s, _)| *s)
                .collect();
            read_seqs.sort_unstable();
            for s in read_seqs {
                let p = tx.pending_reads.get_mut(&s).unwrap();
                if !head_charged {
                    head_charged = true;
                    p.retries += 1;
                    if p.retries > self.cfg.retry_count {
                        exceeded = true;
                    }
                }
                if replay.iter().all(|r| r.seq != s) {
                    replay.push_back(TxMsg {
                        wr: SendWr {
                            wr_id: p.wr_id,
                            op: SendOp::Read,
                            payload: Payload::Zero(p.total),
                            remote: Some(p.remote),
                            imm: None,
                            local: Some(p.local),
                            signaled: p.signaled,
                            span: SpanToken::NONE,
                        },
                        seq: s,
                        sent_off: 0,
                        started: false,
                        retries: p.retries,
                        gather: None,
                    });
                }
            }
            replay.make_contiguous().sort_by_key(|m| m.seq);
            let n = replay.len() as u64;
            tx.retx = replay;
            if rnr {
                tx.backoff_until = now + self.cfg.rnr_timer;
            }
            qp.retransmissions.set(qp.retransmissions.get() + n);
            self.stats.borrow_mut().retransmissions += n;
            tele!(Retransmit {
                node: self.node.0,
                qpn: qp.qpn.0,
                msgs: n,
            });
            exceeded
        };
        if exceeded {
            let status = if rnr {
                CqeStatus::RnrRetryExceeded
            } else {
                CqeStatus::RetryExceeded
            };
            self.fail_qp(qp, status);
            return;
        }
        let wake = qp.tx.borrow().backoff_until;
        self.activate(qp.qpn, wake);
    }

    /// Raise a CQE. Every completion the engine generates funnels through
    /// here so the `CqeDelay` fault (an RNIC stall, §III robustness) can
    /// hold it back; without an open fault window this is a plain push.
    fn push_cqe(&self, cq: &Rc<CompletionQueue>, cqe: Cqe) {
        #[cfg(feature = "faults")]
        if let Some(d) = xrdma_faults::cqe_delay(self.node.0) {
            let cq = cq.clone();
            self.world.schedule_in(d, move || cq.push(cqe));
            return;
        }
        cq.push(cqe);
    }

    /// React to a fault-injector node command (registered in `Rnic::new`).
    #[cfg(feature = "faults")]
    fn fault_cmd(self: &Rc<Self>, cmd: xrdma_faults::NodeCmd) {
        use xrdma_faults::NodeCmd;
        match cmd {
            NodeCmd::Crash => self.crash(),
            NodeCmd::Restart => self.restart(),
            // Pausing needs no action here: `deliver` checks the injector's
            // pause state and buffers arrivals into `paused_rx`.
            NodeCmd::Pause => {}
            NodeCmd::Resume => {
                let held = std::mem::take(&mut *self.paused_rx.borrow_mut());
                for pkt in held {
                    self.deliver_filtered(pkt);
                }
            }
            NodeCmd::QpError => {
                let rts: Vec<Rc<Qp>> = self
                    .qps
                    .borrow()
                    .values()
                    .filter(|qp| qp.state() == crate::qp::QpState::Rts)
                    .cloned()
                    .collect();
                for qp in rts {
                    self.fail_qp(&qp, CqeStatus::WrFlushError);
                }
            }
        }
    }

    /// Move the QP to the error state and flush everything with error CQEs.
    fn fail_qp(self: &Rc<Self>, qp: &Rc<Qp>, head_status: CqeStatus) {
        qp.set_error();
        let mut first = true;
        let mut tx = qp.tx.borrow_mut();
        let mut complete = |wr_id: u64, op: CqeOpcode| {
            let status = if first {
                first = false;
                head_status
            } else {
                CqeStatus::WrFlushError
            };
            self.push_cqe(
                &qp.send_cq,
                Cqe {
                    wr_id,
                    status,
                    opcode: op,
                    byte_len: 0,
                    imm: None,
                    qpn: qp.qpn,
                    span: SpanToken::NONE,
                },
            );
        };
        let retx = std::mem::take(&mut tx.retx);
        for m in retx {
            complete(m.wr.wr_id, op_to_cqe(&m.wr.op));
        }
        let unacked = std::mem::take(&mut tx.unacked);
        for u in unacked {
            complete(u.wr.wr_id, op_to_cqe(&u.wr.op));
        }
        if let Some(c) = tx.cur.take() {
            complete(c.wr.wr_id, op_to_cqe(&c.wr.op));
        }
        let sq = std::mem::take(&mut tx.sq);
        for w in sq {
            complete(w.wr_id, op_to_cqe(&w.op));
        }
        let reads = std::mem::take(&mut tx.pending_reads);
        for (_, p) in reads {
            complete(p.wr_id, CqeOpcode::Read);
        }
        let atomics = std::mem::take(&mut tx.pending_atomics);
        for (_, p) in atomics {
            complete(p.wr_id, CqeOpcode::Atomic);
        }
        drop(tx);
        // Flush posted receives too.
        let mut rx = qp.rx.borrow_mut();
        let rq = std::mem::take(&mut rx.rq);
        for r in rq {
            self.push_cqe(
                &qp.recv_cq,
                Cqe {
                    wr_id: r.wr_id,
                    status: CqeStatus::WrFlushError,
                    opcode: CqeOpcode::Recv,
                    byte_len: 0,
                    imm: None,
                    qpn: qp.qpn,
                    span: SpanToken::NONE,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // DCQCN timers
    // ------------------------------------------------------------------

    fn mark_congested(self: &Rc<Self>, qpn: Qpn) {
        self.congested.borrow_mut().insert(qpn);
        if !self.dcqcn_timer_armed() {
            if self.dcqcn_timer.borrow().is_none() {
                // Weak: the slab slot must not pin the RNIC in a cycle.
                let me = self.me.borrow().clone();
                *self.dcqcn_timer.borrow_mut() = Some(self.world.timer(move || {
                    if let Some(me) = me.upgrade() {
                        me.dcqcn_tick();
                    }
                }));
            }
            self.dcqcn_timer
                .borrow()
                .as_ref()
                .expect("just installed")
                .arm_in(self.cfg.dcqcn.alpha_timer);
        }
    }

    fn dcqcn_timer_armed(&self) -> bool {
        self.dcqcn_timer
            .borrow()
            .as_ref()
            .is_some_and(|t| t.is_armed())
    }

    fn dcqcn_tick(self: &Rc<Self>) {
        if !self.alive.get() {
            return;
        }
        let now = self.world.now();
        let line = self.cfg.dcqcn.line_rate_gbps;
        let mut recovered = Vec::new();
        {
            let congested = self.congested.borrow();
            for &qpn in congested.iter() {
                if let Some(qp) = self.qp(qpn) {
                    let mut rp = qp.rp.borrow_mut();
                    rp.on_timer(now);
                    if rp.recovered(line) {
                        recovered.push(qpn);
                    }
                } else {
                    recovered.push(qpn);
                }
            }
        }
        {
            let mut congested = self.congested.borrow_mut();
            for q in recovered {
                congested.remove(&q);
            }
            if !congested.is_empty() {
                self.dcqcn_timer
                    .borrow()
                    .as_ref()
                    .expect("tick fired from this timer")
                    .arm_in(self.cfg.dcqcn.alpha_timer);
            }
        }
        // Rate changes may unblock pacing earlier than previously computed;
        // a kick is cheap.
        self.arm_kick(Time::ZERO);
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Serialize receive-side processing per QP and apply rx latency.
    ///
    /// Cache-miss penalties vary packet to packet, so per-QP handling is
    /// pinned monotone via `rx_ready` to keep the request stream in order.
    fn rx_process(self: &Rc<Self>, qp: Rc<Qp>, f: impl FnOnce(&Rc<Rnic>, &Rc<Qp>) + 'static) {
        let miss = {
            let hit = self.qp_cache.borrow_mut().touch(qp.qpn.0);
            qp.note_ctx_cache(hit);
            let mut st = self.stats.borrow_mut();
            if hit {
                st.qp_cache_hits += 1;
                Dur::ZERO
            } else {
                st.qp_cache_misses += 1;
                drop(st);
                self.charge_ctx_fetch()
            }
        };
        let at = (self.world.now() + self.cfg.rx_process + miss).max(qp.rx_ready.get());
        qp.rx_ready.set(at);
        let me = self.clone();
        self.world.schedule_at(at, move || {
            f(&me, &qp);
        });
    }

    fn handle_data(
        self: &Rc<Self>,
        qp: &Rc<Qp>,
        msg_seq: u64,
        op: WireOp,
        frag_off: u64,
        total_len: u64,
        last: bool,
        remote: Option<(u64, u32)>,
        imm: Option<u32>,
        data: FragData,
        span: SpanToken,
    ) {
        if !qp.can_recv() {
            return;
        }
        {
            let mut st = self.stats.borrow_mut();
            st.data_pkts_rx += 1;
            st.data_bytes_rx += data.len() as u64;
        }
        let next = qp.rx.borrow().next_deliver;
        if msg_seq < next {
            // Duplicate of an already-accepted message: re-ACK so the
            // sender's window can advance.
            if last {
                self.send_ack(qp);
            }
            return;
        }
        if msg_seq > next {
            // Gap (a loss upstream, e.g. injected by the Filter).
            let awaiting = qp.rx.borrow().awaiting_retx;
            if !awaiting {
                qp.rx.borrow_mut().awaiting_retx = true;
                qp.rx.borrow_mut().cur = None;
                self.stats.borrow_mut().seq_naks += 1;
                self.send_ctrl(
                    qp,
                    Bth::Nak {
                        dst_qpn: qp.remote().unwrap().1,
                        expected_seq: next,
                        kind: NakKind::SeqError,
                    },
                    4,
                    PRIO_RDMA,
                );
            }
            return;
        }

        // msg_seq == next_deliver.
        if frag_off == 0 {
            qp.rx.borrow_mut().awaiting_retx = false;
            let needs_rqe = matches!(op, WireOp::Send | WireOp::WriteImm);
            let rqe = if needs_rqe {
                match qp.take_rqe() {
                    Some(r) => {
                        // Only Send places payload in the RQE buffer; a
                        // WriteImm targets the remote address instead, so
                        // the RQE length is irrelevant there.
                        if op == WireOp::Send && r.len < total_len {
                            // Local length error at responder: fatal.
                            self.send_ctrl(
                                qp,
                                Bth::Nak {
                                    dst_qpn: qp.remote().unwrap().1,
                                    expected_seq: msg_seq,
                                    kind: NakKind::RemoteAccess,
                                },
                                4,
                                PRIO_RDMA,
                            );
                            return;
                        }
                        Some(r)
                    }
                    None => {
                        // Receiver not ready.
                        self.stats.borrow_mut().rnr_naks_sent += 1;
                        qp.rx.borrow_mut().awaiting_retx = true;
                        self.send_ctrl(
                            qp,
                            Bth::Nak {
                                dst_qpn: qp.remote().unwrap().1,
                                expected_seq: msg_seq,
                                kind: NakKind::Rnr,
                            },
                            4,
                            PRIO_RDMA,
                        );
                        return;
                    }
                }
            } else {
                None
            };
            qp.rx.borrow_mut().cur = Some(RxMsg {
                seq: msg_seq,
                received: 0,
                total: total_len,
                rqe,
            });
        } else {
            // Continuation fragment must match the assembly in progress.
            let ok = {
                let rx = qp.rx.borrow();
                match &rx.cur {
                    Some(c) => c.seq == msg_seq && c.received == frag_off && !rx.awaiting_retx,
                    None => false,
                }
            };
            if !ok {
                return; // mid-retransmit noise; the NAK machinery recovers.
            }
        }

        // Data placement.
        let frag_len = data.len() as u64;
        let place_err = match op {
            WireOp::Write | WireOp::WriteImm => {
                if total_len == 0 {
                    // Zero-byte probe (keepalive): nothing to place.
                    None
                } else {
                    let (addr, rkey) = remote.expect("validated at post");
                    match self
                        .mem
                        .resolve_remote(rkey, addr + frag_off, frag_len, true, false)
                    {
                        Ok(mr) => {
                            let miss = !self.mr_cache.borrow_mut().touch(rkey);
                            if miss {
                                self.stats.borrow_mut().mr_cache_misses += 1;
                            }
                            match &data {
                                FragData::Bytes(b) => mr.write(addr + frag_off, b).err(),
                                FragData::Padded { head, .. } => {
                                    mr.write(addr + frag_off, head).err()
                                }
                                FragData::Zero(_) => None,
                            }
                        }
                        Err(e) => Some(e),
                    }
                }
            }
            WireOp::Send => {
                let rx = qp.rx.borrow();
                let rqe = rx.cur.as_ref().and_then(|c| c.rqe.clone());
                drop(rx);
                match rqe {
                    Some(r) => {
                        let real: Option<&Bytes> = match &data {
                            FragData::Bytes(b) => Some(b),
                            FragData::Padded { head, .. } => Some(head),
                            FragData::Zero(_) => None,
                        };
                        match real {
                            Some(b) => match self.mem.by_lkey(r.lkey) {
                                Some(mr) => mr.write(r.addr + frag_off, b).err(),
                                // Unbacked receive buffers are allowed in
                                // size-only mode.
                                None => None,
                            },
                            None => None,
                        }
                    }
                    None => None,
                }
            }
        };
        if place_err.is_some() {
            self.send_ctrl(
                qp,
                Bth::Nak {
                    dst_qpn: qp.remote().unwrap().1,
                    expected_seq: msg_seq,
                    kind: NakKind::RemoteAccess,
                },
                4,
                PRIO_RDMA,
            );
            qp.rx.borrow_mut().cur = None;
            return;
        }

        let mut completed = false;
        {
            let mut rx = qp.rx.borrow_mut();
            if let Some(cur) = rx.cur.as_mut() {
                cur.received += frag_len;
                if last {
                    completed = true;
                }
            }
        }
        if completed {
            let cur = qp.rx.borrow_mut().cur.take().unwrap();
            {
                let mut rx = qp.rx.borrow_mut();
                rx.next_deliver += 1;
                rx.unacked_count += 1;
            }
            if let Some(rqe) = cur.rqe {
                let opcode = if op == WireOp::WriteImm {
                    CqeOpcode::RecvWriteImm
                } else {
                    CqeOpcode::Recv
                };
                // Marked before push so a fault-injected CQE stall
                // (`CqeDelay`) is attributed to the `cqe` stage.
                span_mark!(span, Cqe);
                self.push_cqe(
                    &qp.recv_cq,
                    Cqe {
                        wr_id: rqe.wr_id,
                        status: CqeStatus::Success,
                        opcode,
                        byte_len: total_len,
                        imm,
                        qpn: qp.qpn,
                        span,
                    },
                );
            }
            self.send_ack(qp);
        }
    }

    fn send_ack(self: &Rc<Self>, qp: &Rc<Qp>) {
        let acked = {
            let mut rx = qp.rx.borrow_mut();
            rx.unacked_count = 0;
            rx.next_deliver.wrapping_sub(1)
        };
        self.send_ctrl(
            qp,
            Bth::Ack {
                dst_qpn: qp.remote().unwrap().1,
                msg_seq: acked,
            },
            4,
            PRIO_RDMA,
        );
    }

    fn handle_ack(self: &Rc<Self>, qp: &Rc<Qp>, msg_seq: u64) {
        let completions = {
            let mut tx = qp.tx.borrow_mut();
            let mut out = Vec::new();
            while let Some(front) = tx.unacked.front() {
                if front.seq <= msg_seq {
                    let u = tx.unacked.pop_front().unwrap();
                    if u.wr.signaled {
                        out.push((u.wr.wr_id, op_to_cqe(&u.wr.op), u.wr.payload.len()));
                    }
                } else {
                    break;
                }
            }
            // Drop replay entries that are now acknowledged.
            tx.retx.retain(|m| m.seq > msg_seq);
            out
        };
        for (wr_id, opcode, byte_len) in completions {
            self.push_cqe(
                &qp.send_cq,
                Cqe {
                    wr_id,
                    status: CqeStatus::Success,
                    opcode,
                    byte_len,
                    imm: None,
                    qpn: qp.qpn,
                    span: SpanToken::NONE,
                },
            );
        }
        // Window may have opened.
        if self.qp_has_tx_work(qp) {
            self.activate(qp.qpn, Time::ZERO);
        }
        self.arm_retx_timer(qp);
    }

    fn handle_nak(self: &Rc<Self>, qp: &Rc<Qp>, expected_seq: u64, kind: NakKind) {
        match kind {
            NakKind::Rnr => {
                qp.rnr_events.set(qp.rnr_events.get() + 1);
                self.stats.borrow_mut().rnr_naks_received += 1;
                tele!(Rnr {
                    node: self.node.0,
                    qpn: qp.qpn.0,
                });
                // Everything below expected_seq is implicitly acked.
                if expected_seq > 0 {
                    self.handle_ack(qp, expected_seq - 1);
                }
                self.go_back_retransmit(qp, Some(expected_seq), true);
            }
            NakKind::SeqError => {
                if expected_seq > 0 {
                    self.handle_ack(qp, expected_seq - 1);
                }
                self.go_back_retransmit(qp, Some(expected_seq), false);
            }
            NakKind::RemoteAccess => {
                // Complete the offending WR with an error and kill the QP.
                let head = {
                    let mut tx = qp.tx.borrow_mut();
                    let pos = tx.unacked.iter().position(|u| u.seq == expected_seq);
                    pos.map(|i| tx.unacked.remove(i).unwrap())
                };
                if let Some(u) = head {
                    self.push_cqe(
                        &qp.send_cq,
                        Cqe {
                            wr_id: u.wr.wr_id,
                            status: CqeStatus::RemoteAccessError,
                            opcode: op_to_cqe(&u.wr.op),
                            byte_len: 0,
                            imm: None,
                            qpn: qp.qpn,
                            span: u.wr.span,
                        },
                    );
                }
                self.fail_qp(qp, CqeStatus::WrFlushError);
            }
        }
    }

    fn handle_read_req(
        self: &Rc<Self>,
        qp: &Rc<Qp>,
        msg_seq: u64,
        remote_addr: u64,
        rkey: u32,
        len: u64,
    ) {
        if !qp.can_recv() {
            return;
        }
        let next = qp.rx.borrow().next_deliver;
        if msg_seq == next {
            qp.rx.borrow_mut().next_deliver += 1;
            qp.rx.borrow_mut().awaiting_retx = false;
        } else if msg_seq > next {
            // Lost something before this read; ask for replay.
            self.send_ctrl(
                qp,
                Bth::Nak {
                    dst_qpn: qp.remote().unwrap().1,
                    expected_seq: next,
                    kind: NakKind::SeqError,
                },
                4,
                PRIO_RDMA,
            );
            return;
        }
        // msg_seq <= next: (re-)execute — reads are idempotent.
        match self
            .mem
            .resolve_remote(rkey, remote_addr, len, false, false)
        {
            Ok(mr) => {
                let miss = !self.mr_cache.borrow_mut().touch(rkey);
                if miss {
                    self.stats.borrow_mut().mr_cache_misses += 1;
                }
                // Stream Zero fragments unless real bytes were actually
                // written into the source range (size-only fast path).
                let data = if mr.has_data_in(remote_addr, len) {
                    mr.read_bytes(remote_addr, len).ok()
                } else {
                    None
                };
                qp.tx.borrow_mut().resp.push_back(RespJob::Read {
                    req_seq: msg_seq,
                    addr: remote_addr,
                    len,
                    sent_off: 0,
                    data,
                });
                self.activate(qp.qpn, Time::ZERO);
            }
            Err(_) => {
                self.send_ctrl(
                    qp,
                    Bth::Nak {
                        dst_qpn: qp.remote().unwrap().1,
                        expected_seq: msg_seq,
                        kind: NakKind::RemoteAccess,
                    },
                    4,
                    PRIO_RDMA,
                );
            }
        }
    }

    fn handle_atomic_req(
        self: &Rc<Self>,
        qp: &Rc<Qp>,
        msg_seq: u64,
        remote_addr: u64,
        rkey: u32,
        compare: Option<u64>,
        operand: u64,
    ) {
        if !qp.can_recv() {
            return;
        }
        let next = qp.rx.borrow().next_deliver;
        if msg_seq == next {
            qp.rx.borrow_mut().next_deliver += 1;
        } else if msg_seq > next {
            self.send_ctrl(
                qp,
                Bth::Nak {
                    dst_qpn: qp.remote().unwrap().1,
                    expected_seq: next,
                    kind: NakKind::SeqError,
                },
                4,
                PRIO_RDMA,
            );
            return;
        }
        match self.mem.resolve_remote(rkey, remote_addr, 8, false, true) {
            Ok(mr) => {
                let old = match compare {
                    Some(expect) => mr.compare_swap(remote_addr, expect, operand),
                    None => mr.fetch_add(remote_addr, operand),
                };
                match old {
                    Ok(old_value) => {
                        qp.tx.borrow_mut().resp.push_back(RespJob::Atomic {
                            req_seq: msg_seq,
                            old_value,
                        });
                        self.activate(qp.qpn, Time::ZERO);
                    }
                    Err(_) => self.send_ctrl(
                        qp,
                        Bth::Nak {
                            dst_qpn: qp.remote().unwrap().1,
                            expected_seq: msg_seq,
                            kind: NakKind::RemoteAccess,
                        },
                        4,
                        PRIO_RDMA,
                    ),
                }
            }
            Err(_) => self.send_ctrl(
                qp,
                Bth::Nak {
                    dst_qpn: qp.remote().unwrap().1,
                    expected_seq: msg_seq,
                    kind: NakKind::RemoteAccess,
                },
                4,
                PRIO_RDMA,
            ),
        }
    }

    fn handle_read_resp(
        self: &Rc<Self>,
        qp: &Rc<Qp>,
        msg_seq: u64,
        frag_off: u64,
        total_len: u64,
        last: bool,
        data: FragData,
    ) {
        {
            let mut st = self.stats.borrow_mut();
            st.data_pkts_rx += 1;
            st.data_bytes_rx += data.len() as u64;
        }
        let done = {
            let mut tx = qp.tx.borrow_mut();
            let Some(p) = tx.pending_reads.get_mut(&msg_seq) else {
                return; // stale response after completion
            };
            if p.received != frag_off {
                return; // out-of-phase duplicate; ignore
            }
            // Response data is progress: reset the retransmission clock so
            // a long (congested) read doesn't falsely time out mid-stream.
            p.issued_at = self.world.now();
            // Scatter into the local buffer when backed.
            let real: Option<&Bytes> = match &data {
                FragData::Bytes(b) => Some(b),
                FragData::Padded { head, .. } => Some(head),
                FragData::Zero(_) => None,
            };
            if let Some(b) = real {
                if let Some(mr) = self.mem.by_lkey(p.local.1) {
                    let _ = mr.write(p.local.0 + frag_off, b);
                }
            }
            p.received += data.len() as u64;
            debug_assert!(p.received <= total_len);
            if last {
                let p = tx.pending_reads.remove(&msg_seq).unwrap();
                Some(p)
            } else {
                None
            }
        };
        if let Some(p) = done {
            if p.signaled {
                self.push_cqe(
                    &qp.send_cq,
                    Cqe {
                        wr_id: p.wr_id,
                        status: CqeStatus::Success,
                        opcode: CqeOpcode::Read,
                        byte_len: p.total,
                        imm: None,
                        qpn: qp.qpn,
                        span: SpanToken::NONE,
                    },
                );
            }
            if self.qp_has_tx_work(qp) {
                self.activate(qp.qpn, Time::ZERO);
            }
        }
    }

    fn handle_atomic_resp(self: &Rc<Self>, qp: &Rc<Qp>, msg_seq: u64, old_value: u64) {
        let done = qp.tx.borrow_mut().pending_atomics.remove(&msg_seq);
        if let Some(p) = done {
            if let Some(mr) = self.mem.by_lkey(p.local.1) {
                let _ = mr.write(p.local.0, &old_value.to_le_bytes());
            }
            if p.signaled {
                self.push_cqe(
                    &qp.send_cq,
                    Cqe {
                        wr_id: p.wr_id,
                        status: CqeStatus::Success,
                        opcode: CqeOpcode::Atomic,
                        byte_len: 8,
                        imm: None,
                        qpn: qp.qpn,
                        span: SpanToken::NONE,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers for bootstrap/tests
    // ------------------------------------------------------------------

    /// Wire two QPs on (possibly different) RNICs directly to each other,
    /// bypassing connection-establishment latency. Tests and the connection
    /// manager's final step both use this. Fails if either QP is not in
    /// RESET (e.g. already wired or in ERROR after a fault).
    pub fn connect_pair(
        a_nic: &Rc<Rnic>,
        a: &Rc<Qp>,
        b_nic: &Rc<Rnic>,
        b: &Rc<Qp>,
    ) -> Result<(), VerbsError> {
        a.modify_to_init()?;
        a.modify_to_rtr(b_nic.node(), b.qpn)?;
        a.modify_to_rts()?;
        b.modify_to_init()?;
        b.modify_to_rtr(a_nic.node(), a.qpn)?;
        b.modify_to_rts()?;
        // Agree on the connection token (negotiated starting PSN).
        let token = Self::derive_token(
            a_nic.world.now().nanos(),
            (a_nic.node().0 as u64) << 32 | a.qpn.0 as u64,
            (b_nic.node().0 as u64) << 32 | b.qpn.0 as u64,
        );
        a.set_conn_token(token);
        b.set_conn_token(token);
        Ok(())
    }

    /// Mix a unique per-connection token (exposed so the connection
    /// manager can do the same agreement).
    pub fn derive_token(now_ns: u64, a: u64, b: u64) -> u64 {
        let mut h = now_ns.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
            ^ a.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
            ^ b.rotate_left(29);
        h ^= h >> 31;
        h.wrapping_mul(0xC4CE_B9FE_1A85_EC53) | 1 // never 0 (reset value)
    }
}

/// Outcome of one transmit attempt.
enum TxOutcome {
    Sent,
    NotBefore(Time),
    Idle,
}

/// One segment ready for the wire.
struct Seg {
    bth: Bth,
    wire_payload: u32,
    dst: NodeId,
    extra: Dur,
    prio: u8,
    /// Span riding the last fragment of a message onto the wire (`NONE`
    /// for non-final fragments and control-plane segments).
    span: SpanToken,
}

fn op_to_cqe(op: &SendOp) -> CqeOpcode {
    match op {
        SendOp::Send => CqeOpcode::Send,
        SendOp::Write | SendOp::WriteImm => CqeOpcode::Write,
        SendOp::Read => CqeOpcode::Read,
        SendOp::FetchAdd(_) | SendOp::CompareSwap { .. } => CqeOpcode::Atomic,
    }
}

impl NicSink for Rnic {
    fn deliver(&self, pkt: Packet) {
        if !self.alive.get() {
            return;
        }
        let Some(me) = self.me.borrow().upgrade() else {
            return;
        };
        // Scheduled fault-plan hooks (`xrdma-faults`): a PeerPause window
        // freezes the node (arrivals buffered, replayed on resume); rx
        // faults model ICRC corruption (drop), NIC-level duplication and
        // reordering. All are recovered by the go-back-N protocol.
        #[cfg(feature = "faults")]
        {
            if xrdma_faults::node_paused(self.node.0) {
                self.paused_rx.borrow_mut().push_back(pkt);
                return;
            }
            match xrdma_faults::rnic_rx(self.node.0) {
                None => {}
                Some(xrdma_faults::RxFault::Drop { .. }) => {
                    self.stats.borrow_mut().fault_rx_drops += 1;
                    return;
                }
                Some(xrdma_faults::RxFault::Duplicate) => {
                    if let Some(tb) = pkt.body.downcast_ref::<TokenedBth>().cloned() {
                        let mut copy = Packet::new(
                            pkt.src,
                            pkt.dst,
                            pkt.prio,
                            pkt.size_bytes,
                            pkt.flow_hash,
                            // xrdma-lint: allow(hot-path-alloc) -- fault-injected duplicate, off the steady-state path
                            Box::new(tb),
                        );
                        copy.ecn_capable = pkt.ecn_capable;
                        copy.ecn_marked = pkt.ecn_marked;
                        copy.span = pkt.span;
                        copy.hop_started_ns = pkt.hop_started_ns;
                        self.stats.borrow_mut().fault_rx_dups += 1;
                        let me2 = me.clone();
                        self.world
                            .schedule_in(Dur::ZERO, move || me2.deliver_filtered(copy));
                    }
                }
                Some(xrdma_faults::RxFault::Delay(d)) => {
                    let me2 = me.clone();
                    self.world.schedule_in(d, move || me2.deliver_filtered(pkt));
                    return;
                }
            }
        }
        // Fault-injection filter (checked once; delayed packets re-enter
        // through deliver_filtered).
        let verdict = match self.filter.borrow().as_ref() {
            Some(f) => f(&pkt),
            None => FilterVerdict::Pass,
        };
        match verdict {
            FilterVerdict::Pass => {}
            FilterVerdict::Drop => {
                self.filtered_drops.set(self.filtered_drops.get() + 1);
                return;
            }
            FilterVerdict::Delay(d) => {
                self.filtered_delays.set(self.filtered_delays.get() + 1);
                let me2 = me.clone();
                self.world.schedule_in(d, move || {
                    me2.deliver_filtered(pkt);
                });
                return;
            }
        }
        me.deliver_filtered(pkt);
    }

    fn pfc_pause(&self, prio: u8, paused: bool) {
        if paused {
            self.stats.borrow_mut().pfc_pauses_seen += 1;
        }
        self.paused_prios.borrow_mut()[prio as usize] = paused;
    }
}

impl Rnic {
    /// Post-filter delivery path.
    fn deliver_filtered(self: &Rc<Self>, pkt: Packet) {
        let me = self.clone();
        let mut pkt = pkt;
        let span = pkt.span;
        let tb = match pkt.body.downcast::<TokenedBth>() {
            Ok(tb) => *tb,
            Err(other) => {
                // Not RDMA traffic: hand to the alternate sink (TCP model).
                pkt.body = other;
                if let Some(f) = self.alt_sink.borrow().as_ref() {
                    f(pkt);
                }
                return;
            }
        };
        let bth = tb.bth;
        let Some(qp) = me.qp(bth.dst_qpn()) else {
            return; // stale packet for a destroyed QP
        };
        if tb.token != qp.conn_token() {
            // A previous life of a recycled QP — the PSN-mismatch drop of
            // real RC.
            self.stats.borrow_mut().stale_drops += 1;
            return;
        }
        // DCQCN notification point: an ECN-marked data packet triggers a
        // CNP back to the sender (paced per QP).
        if pkt.ecn_marked && bth.is_data() {
            let fire = qp
                .np
                .borrow_mut()
                .should_send_cnp(me.world.now(), &me.cfg.dcqcn);
            if fire {
                if let Some((_, remote_qpn)) = qp.remote() {
                    me.stats.borrow_mut().cnps_sent += 1;
                    tele!(CnpGenerated {
                        node: me.node.0,
                        qpn: qp.qpn.0,
                    });
                    me.send_ctrl(
                        &qp,
                        Bth::Cnp {
                            dst_qpn: remote_qpn,
                        },
                        2,
                        PRIO_CTRL,
                    );
                }
            }
        }
        match bth {
            Bth::Data {
                msg_seq,
                op,
                frag_off,
                total_len,
                last,
                remote,
                imm,
                data,
                ..
            } => {
                if last {
                    // Wire transit ends here; RX-pipeline residency starts.
                    span_mark!(span, Rx);
                }
                me.rx_process(qp, move |nic, qp| {
                    nic.handle_data(
                        qp, msg_seq, op, frag_off, total_len, last, remote, imm, data, span,
                    );
                });
            }
            Bth::ReadReq {
                msg_seq,
                remote_addr,
                rkey,
                len,
                ..
            } => {
                me.rx_process(qp, move |nic, qp| {
                    nic.handle_read_req(qp, msg_seq, remote_addr, rkey, len);
                });
            }
            Bth::AtomicReq {
                msg_seq,
                remote_addr,
                rkey,
                compare,
                operand,
                ..
            } => {
                me.rx_process(qp, move |nic, qp| {
                    nic.handle_atomic_req(qp, msg_seq, remote_addr, rkey, compare, operand);
                });
            }
            Bth::Ack { msg_seq, .. } => me.handle_ack(&qp, msg_seq),
            Bth::Nak {
                expected_seq, kind, ..
            } => me.handle_nak(&qp, expected_seq, kind),
            Bth::ReadResp {
                msg_seq,
                frag_off,
                total_len,
                last,
                data,
                ..
            } => me.handle_read_resp(&qp, msg_seq, frag_off, total_len, last, data),
            Bth::AtomicResp {
                msg_seq, old_value, ..
            } => me.handle_atomic_resp(&qp, msg_seq, old_value),
            Bth::Cnp { .. } => {
                me.stats.borrow_mut().cnps_received += 1;
                if me.cfg.dcqcn_enabled {
                    qp.rp.borrow_mut().on_cnp(me.world.now());
                    me.mark_congested(qp.qpn);
                }
            }
        }
    }
}
