//! Paper-vs-measured reporting: every harness prints a uniform comparison
//! table and persists machine-readable artifacts under the workspace
//! `results/` directory for EXPERIMENTS.md.
//!
//! Artifact layout per experiment (all paths deterministic, independent of
//! the invoking directory — see [`results_dir`]):
//!
//! * `results/<experiment>.json` — rows, verdicts, and every attached
//!   series as a named JSON object;
//! * `results/<experiment>.<series>.csv` — one two-column CSV per series
//!   for direct plotting;
//! * any extra files attached via [`Report::attach_file`] (e.g. a Chrome
//!   `trace_event` dump from the telemetry hub).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{write_json_str, Serialize};

/// One compared quantity.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    pub metric: String,
    pub paper: String,
    pub measured: String,
    /// Does the measured value preserve the paper's claim (direction /
    /// rough magnitude)?
    pub holds: bool,
}

/// A whole experiment report.
#[derive(Clone, Debug)]
pub struct Report {
    pub experiment: String,
    pub description: String,
    pub rows: Vec<Row>,
    /// Free-form series dumps (plot data) keyed by name.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Extra artifacts written verbatim next to the JSON on `finish()`:
    /// `(file name, contents)`.
    pub extra_files: Vec<(String, String)>,
}

/// Resolve the workspace `results/` directory regardless of where the
/// binary was invoked from, so every `fig*`/`exp_*` run lands its
/// artifacts in the same place:
///
/// 1. `XRDMA_RESULTS_DIR` environment override, taken verbatim;
/// 2. the nearest ancestor of the current directory whose `Cargo.toml`
///    declares `[workspace]`, plus `results/`;
/// 3. fallback: `<this crate>/../../results` resolved at compile time.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("XRDMA_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(mut cur) = std::env::current_dir() {
        loop {
            let manifest = cur.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return cur.join("results");
                }
            }
            if !cur.pop() {
                break;
            }
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

impl Report {
    pub fn new(experiment: &str, description: &str) -> Report {
        Report {
            experiment: experiment.to_string(),
            description: description.to_string(),
            rows: Vec::new(),
            series: Vec::new(),
            extra_files: Vec::new(),
        }
    }

    /// Add a compared metric.
    pub fn row(
        &mut self,
        metric: &str,
        paper: impl ToString,
        measured: impl ToString,
        holds: bool,
    ) {
        self.rows.push(Row {
            metric: metric.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
            holds,
        });
    }

    /// Attach a plottable series.
    pub fn series(&mut self, name: &str, rows: Vec<(f64, f64)>) {
        self.series.push((name.to_string(), rows));
    }

    /// Attach a verbatim artifact (e.g. `fig10_flowctl.trace.json`) to be
    /// written into `results/` on `finish()`.
    pub fn attach_file(&mut self, name: &str, contents: String) {
        self.extra_files.push((name.to_string(), contents));
    }

    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.experiment, self.description);
        let w = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(10)
            .max(6);
        let pw = self
            .rows
            .iter()
            .map(|r| r.paper.len())
            .max()
            .unwrap_or(8)
            .max(5);
        let mw = self
            .rows
            .iter()
            .map(|r| r.measured.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(
            out,
            "{:w$}  {:>pw$}  {:>mw$}  shape",
            "metric", "paper", "measured"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:w$}  {:>pw$}  {:>mw$}  {}",
                r.metric,
                r.paper,
                r.measured,
                if r.holds { "HOLDS" } else { "DIFFERS" }
            );
        }
        out
    }

    /// Do all rows hold?
    pub fn all_hold(&self) -> bool {
        self.rows.iter().all(|r| r.holds)
    }

    fn write_artifact(dir: &Path, name: &str, contents: &str) {
        let path = dir.join(name);
        match fs::write(&path, contents) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("[report] FAILED to write {}: {e}", path.display()),
        }
    }

    /// Print and persist everything under [`results_dir`].
    pub fn finish(&self) {
        println!("{}", self.render());
        for (name, rows) in &self.series {
            println!("series {name} ({} points)", rows.len());
        }
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("[report] FAILED to create {}: {e}", dir.display());
        }
        match serde_json::to_string_pretty(self) {
            Ok(json) => Self::write_artifact(&dir, &format!("{}.json", self.experiment), &json),
            Err(e) => eprintln!("[report] FAILED to serialize {}: {e:?}", self.experiment),
        }
        for (name, rows) in &self.series {
            let file = format!("{}.{}.csv", self.experiment, name.replace('/', "-"));
            let csv = xrdma_telemetry::export::series_csv(name, rows);
            Self::write_artifact(&dir, &file, &csv);
        }
        for (name, contents) in &self.extra_files {
            Self::write_artifact(&dir, name, contents);
        }
        println!(
            "[{}] {}",
            self.experiment,
            if self.all_hold() {
                "all shapes HOLD"
            } else {
                "some shapes DIFFER (see rows)"
            }
        );
    }
}

// Hand-written so `series` serializes as a named JSON object (the derive
// would emit an array of pairs), keeping `results/*.json` self-describing.
impl Serialize for Report {
    fn json_into(&self, out: &mut String) {
        out.push_str("{\"experiment\":");
        write_json_str(&self.experiment, out);
        out.push_str(",\"description\":");
        write_json_str(&self.description, out);
        out.push_str(",\"all_hold\":");
        self.all_hold().json_into(out);
        out.push_str(",\"rows\":");
        self.rows.json_into(out);
        out.push_str(",\"series\":{");
        for (i, (name, rows)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(name, out);
            out.push(':');
            rows.json_into(out);
        }
        out.push_str("}}");
    }
}

/// Format a microsecond value compactly.
pub fn us(v: f64) -> String {
    format!("{v:.2}µs")
}

/// Format a Gb/s value compactly.
pub fn gbps(v: f64) -> String {
    format!("{v:.2}Gbps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows() {
        let mut r = Report::new("figX", "demo");
        r.row("latency", "5.60µs", "5.72µs", true);
        r.row("ratio", "1.05x", "2.0x", false);
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("HOLDS"));
        assert!(s.contains("DIFFERS"));
        assert!(!r.all_hold());
    }

    #[test]
    fn json_names_series() {
        let mut r = Report::new("figX", "demo");
        r.row("latency", "1", "1", true);
        r.series("goodput_gbps", vec![(0.0, 10.0), (0.1, 12.0)]);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"series\":{\"goodput_gbps\":[[0.0,10.0],[0.1,12.0]]}"));
        assert!(json.contains("\"all_hold\":true"));
    }

    #[test]
    fn results_dir_env_override_wins() {
        // Serialized env access: this test owns the var for its duration.
        std::env::set_var("XRDMA_RESULTS_DIR", "/tmp/xrdma-results-test");
        assert_eq!(results_dir(), PathBuf::from("/tmp/xrdma-results-test"));
        std::env::remove_var("XRDMA_RESULTS_DIR");
        let d = results_dir();
        assert!(
            d.ends_with("results"),
            "fallback resolves a results dir: {}",
            d.display()
        );
    }
}
