//! Machine-readable output and the committed-baseline mechanism.
//!
//! `--format json` renders the full report as a deterministic, stably
//! sorted JSON document (no timestamps, no map iteration, fixed key
//! order), so `results/lint.json` is byte-identical across runs on the
//! same tree and can sit under the CI golden-diff gate.
//!
//! The baseline file (`crates/lint/lint.baseline`) is the *debt
//! register*: warning-severity findings that are real but accepted until
//! a named refactor lands (today: the S1/S2 single-threaded-kernel state
//! that ROADMAP item 1 will migrate). CI fails only on diagnostics NOT
//! in the baseline, so new debt cannot slip in while old debt is being
//! paid down. Entries match on `(rule, file, trimmed snippet)` — not
//! line numbers — so unrelated edits above a baselined site don't
//! invalidate it. The format is tab-separated text rather than JSON
//! because the crate is std-only and a text format needs no parser:
//!
//! ```text
//! # comment
//! cross-shard-static<TAB>crates/telemetry/src/hub.rs<TAB>thread_local! {
//! ```

use std::path::Path;

use crate::{AllowSite, FileReport, Severity, Violation};

/// One committed-baseline entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub snippet: String,
}

/// Parse a baseline file's text. Blank lines and `#` comments are
/// skipped; anything else must be `rule<TAB>file<TAB>snippet`.
/// Malformed lines are returned as errors (their 1-based line numbers).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, Vec<usize>> {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(file), Some(snippet)) if !rule.is_empty() && !file.is_empty() => {
                entries.push(BaselineEntry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    snippet: snippet.trim().to_string(),
                });
            }
            _ => bad.push(idx + 1),
        }
    }
    Ok(entries).and_then(|e| if bad.is_empty() { Ok(e) } else { Err(bad) })
}

/// Render violations back into baseline-file text (the `--write-baseline`
/// workflow: regenerate, review the diff, commit).
pub fn render_baseline(violations: &[Violation]) -> String {
    let mut out = String::from(
        "# xrdma-lint baseline: accepted diagnostics, one per line as\n\
         # rule<TAB>file<TAB>snippet. CI fails only on diagnostics not\n\
         # listed here. Regenerate with `xrdma-lint --write-baseline`\n\
         # and review the diff before committing.\n",
    );
    for v in violations {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            v.rule.name(),
            display_path(&v.file),
            v.snippet.trim()
        ));
    }
    out
}

/// Baseline comparison: which violations are pre-existing debt, and
/// which baseline entries no longer match anything (stale).
pub struct BaselineDiff {
    /// Parallel to the violations slice: `true` = covered by the baseline.
    pub baselined: Vec<bool>,
    /// Baseline entries that matched no violation. Stale entries are
    /// reported as warnings (paid-down debt should be deleted) but do
    /// not fail the run.
    pub stale: Vec<BaselineEntry>,
}

/// Match violations against the baseline as a multiset on
/// `(rule, file, trimmed snippet)`: two identical findings need two
/// entries, and each entry covers exactly one finding.
pub fn diff_baseline(violations: &[Violation], baseline: &[BaselineEntry]) -> BaselineDiff {
    let mut remaining: Vec<Option<&BaselineEntry>> = baseline.iter().map(Some).collect();
    let baselined = violations
        .iter()
        .map(|v| {
            let key = (v.rule.name(), display_path(&v.file), v.snippet.trim());
            for slot in remaining.iter_mut() {
                if let Some(e) = slot {
                    if (e.rule.as_str(), e.file.clone(), e.snippet.as_str()) == key {
                        *slot = None;
                        return true;
                    }
                }
            }
            false
        })
        .collect();
    BaselineDiff {
        baselined,
        stale: remaining.into_iter().flatten().cloned().collect(),
    }
}

/// Render the report as deterministic JSON. `diff` carries the baseline
/// comparison; with no baseline in play, pass an all-`false` diff.
pub fn render_json(report: &FileReport, diff: &BaselineDiff) -> String {
    let mut out = String::with_capacity(4096);
    let new_count = diff.baselined.iter().filter(|b| !**b).count();
    let errors = report
        .violations
        .iter()
        .filter(|v| v.rule.severity() == Severity::Error)
        .count();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"new\": {}, \"baselined\": {}, \
         \"unused_allows\": {}, \"malformed_allows\": {}, \"stale_baseline\": {}}},\n",
        errors,
        report.violations.len() - errors,
        new_count,
        report.violations.len() - new_count,
        report.unused_allows.len(),
        report.malformed_allows.len(),
        diff.stale.len(),
    ));

    out.push_str("  \"diagnostics\": [");
    for (i, v) in report.violations.iter().enumerate() {
        push_sep(&mut out, i);
        out.push_str(&format!(
            "{{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"baselined\": {}, \"snippet\": \"{}\", \"message\": \"{}\"}}",
            v.rule.name(),
            v.rule.severity(),
            escape(&display_path(&v.file)),
            v.line,
            diff.baselined.get(i).copied().unwrap_or(false),
            escape(v.snippet.trim()),
            escape(&v.message),
        ));
    }
    out.push_str("],\n");

    // Stale allows surface as A1 diagnostics: an escape hatch that no
    // longer suppresses anything is itself a contract violation.
    out.push_str("  \"unused_allows\": [");
    for (i, u) in report.unused_allows.iter().enumerate() {
        push_sep(&mut out, i);
        out.push_str(&format!(
            "{{\"rule\": \"unused-allow\", \"severity\": \"error\", \"file\": \"{}\", \
             \"line\": {}, \"stale_rule\": \"{}\"}}",
            escape(&display_path(&u.file)),
            u.line,
            u.rule.name(),
        ));
    }
    out.push_str("],\n");

    out.push_str("  \"malformed_allows\": [");
    for (i, (file, line)) in report.malformed_allows.iter().enumerate() {
        push_sep(&mut out, i);
        out.push_str(&format!(
            "{{\"file\": \"{}\", \"line\": {}}}",
            escape(&display_path(file)),
            line
        ));
    }
    out.push_str("],\n");

    out.push_str("  \"allows\": [");
    let mut allows: Vec<&AllowSite> = report.allows.iter().collect();
    allows.sort_by_key(|a| (display_path(&a.file), a.line));
    for (i, a) in allows.iter().enumerate() {
        push_sep(&mut out, i);
        out.push_str(&format!(
            "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            a.rule.name(),
            escape(&display_path(&a.file)),
            a.line,
            escape(&a.reason),
        ));
    }
    out.push_str("],\n");

    out.push_str("  \"stale_baseline\": [");
    for (i, e) in diff.stale.iter().enumerate() {
        push_sep(&mut out, i);
        out.push_str(&format!(
            "{{\"rule\": \"{}\", \"file\": \"{}\", \"snippet\": \"{}\"}}",
            escape(&e.rule),
            escape(&e.file),
            escape(&e.snippet),
        ));
    }
    out.push_str("]\n}\n");
    out
}

fn push_sep(out: &mut String, i: usize) {
    if i == 0 {
        out.push_str("\n    ");
    } else {
        out.push_str(",\n    ");
    }
}

/// Paths rendered with forward slashes regardless of platform, so the
/// committed JSON and baseline are portable.
pub fn display_path(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
