//! `xrdma-lint` — source-level enforcement of the determinism contract
//! (DESIGN.md "Determinism contract").
//!
//! The whole reproduction rests on the discrete-event simulation being
//! deterministic: same seed, same CQE timings, same Figure-10 CNP/PFC
//! dynamics. Nothing in the type system enforces that — a stray
//! `Instant::now()`, an unseeded `thread_rng()`, or one iteration over a
//! `HashMap` in an event-scheduling path silently destroys
//! reproducibility. This crate is a std-only static-analysis pass (the
//! build environment is offline, so no syn/rustc plumbing) that walks the
//! workspace sources and enforces:
//!
//! * **D1 `wall-clock`** — no `std::time::{Instant, SystemTime}` in the
//!   simulation crates; virtual time comes from `World::now()` only.
//! * **D2 `ambient-randomness`** — no `rand::thread_rng` / `rand::random`;
//!   all randomness flows through `xrdma_sim::rng::SimRng` forks.
//! * **D3 `nondeterministic-iter`** — no order-dependent iteration over
//!   `HashMap`/`HashSet` in simulation crates; use `BTreeMap`/`BTreeSet`
//!   or sort keys first. Lookup-only maps keep `HashMap` with an
//!   explicit allow annotation.
//! * **D4 `intra-world-parallelism`** — no `thread::spawn` / `static mut`
//!   inside a world; parallelism in this project happens across worlds.
//! * **D5 `unwrap-in-api`** — `unwrap()`/`expect()` on public API paths
//!   of `xrdma-core`/`xrdma-rnic` must become `XrdmaError`/`VerbsError`
//!   results (internal invariants go through `debug_invariants`).
//! * **F1 `ungated-fault-hook`** — every `xrdma_faults::` hook in a
//!   runtime crate must sit under `#[cfg(feature = "faults")]`, so
//!   production builds carry zero fault-injection code and benchmark
//!   numbers are unaffected.
//! * **P1 `hot-path-alloc`** — no per-packet heap allocation in the
//!   fabric/RNIC data-path files (`Box::new`, `vec![`, `.to_vec()`,
//!   `Bytes::from`, payload `.clone()`); the zero-copy contract carries
//!   payloads as `bytes::Bytes` windows over a per-message gather buffer.
//!   One-time setup sites carry an allow annotation with a reason.
//!
//! The escape hatch, for reviewed exceptions, is a line annotation in the
//! source comment — it must carry a reason:
//!
//! ```text
//! // xrdma-lint: allow(nondeterministic-iter) -- lookup-only map, never iterated for scheduling
//! ```
//!
//! placed either on the offending line or on the line directly above it.

use std::fmt;
use std::path::{Path, PathBuf};

/// The determinism-contract rules, D1–D5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// D1: wall-clock time sources in simulation crates.
    WallClock,
    /// D2: ambient (unseeded, order-dependent) randomness.
    AmbientRandomness,
    /// D3: order-dependent iteration over hash containers.
    NondeterministicIter,
    /// D4: threads or mutable globals inside a world.
    IntraWorldParallelism,
    /// D5: unwrap/expect on public API paths.
    UnwrapInApi,
    /// T1: telemetry emitted around the `tele!` macro (direct `emit_raw`
    /// calls), which would defeat the zero-overhead-when-off contract.
    RawTelemetry,
    /// F1: a fault-injection hook (`xrdma_faults::...`) not under
    /// `#[cfg(feature = "faults")]`, which would leave injection code in
    /// production builds and skew benchmark numbers.
    UngatedFaultHook,
    /// P1: a heap allocation (`Box::new`, `vec![`, `.to_vec()`,
    /// `Bytes::from`, or `.clone()` of a payload buffer) in one of the
    /// per-packet hot files of the fabric/RNIC data path. The zero-copy
    /// contract (see `Packet` docs) keeps the steady-state path
    /// allocation-free; one-time setup sites carry an allow annotation.
    HotPathAlloc,
}

impl Rule {
    /// The annotation name, as written in `allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRandomness => "ambient-randomness",
            Rule::NondeterministicIter => "nondeterministic-iter",
            Rule::IntraWorldParallelism => "intra-world-parallelism",
            Rule::UnwrapInApi => "unwrap-in-api",
            Rule::RawTelemetry => "raw-telemetry-emit",
            Rule::UngatedFaultHook => "ungated-fault-hook",
            Rule::HotPathAlloc => "hot-path-alloc",
        }
    }

    pub fn from_name(s: &str) -> Option<Rule> {
        Some(match s {
            "wall-clock" => Rule::WallClock,
            "ambient-randomness" => Rule::AmbientRandomness,
            "nondeterministic-iter" => Rule::NondeterministicIter,
            "intra-world-parallelism" => Rule::IntraWorldParallelism,
            "unwrap-in-api" => Rule::UnwrapInApi,
            "raw-telemetry-emit" => Rule::RawTelemetry,
            "ungated-fault-hook" => Rule::UngatedFaultHook,
            "hot-path-alloc" => Rule::HotPathAlloc,
            _ => return None,
        })
    }

    pub const ALL: [Rule; 8] = [
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::NondeterministicIter,
        Rule::IntraWorldParallelism,
        Rule::UnwrapInApi,
        Rule::RawTelemetry,
        Rule::UngatedFaultHook,
        Rule::HotPathAlloc,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub snippet: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message,
            self.snippet.trim()
        )
    }
}

/// An allow annotation that matched no violation (stale escape hatch).
#[derive(Clone, Debug)]
pub struct UnusedAllow {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
}

/// Which rules apply to a crate, derived from its role in the system.
#[derive(Clone, Copy, Debug)]
pub struct RuleSet {
    pub rules: &'static [Rule],
}

/// Simulation crates: everything that runs inside a `World` must be fully
/// deterministic, so D1–D4 all apply.
pub const SIM_RULES: RuleSet = RuleSet {
    rules: &[
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::NondeterministicIter,
        Rule::IntraWorldParallelism,
        Rule::RawTelemetry,
        Rule::UngatedFaultHook,
    ],
};

/// `xrdma-core` / `xrdma-rnic` additionally expose the public verbs and
/// middleware API, where panicking on caller input is a contract bug (D5).
/// The send/completion path (`channel.rs` via `HOT_PATH_FILES`) also
/// carries P1: the doorbell-coalescing fast path must not allocate per WR.
pub const API_RULES: RuleSet = RuleSet {
    rules: &[
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::NondeterministicIter,
        Rule::IntraWorldParallelism,
        Rule::UnwrapInApi,
        Rule::RawTelemetry,
        Rule::UngatedFaultHook,
        Rule::HotPathAlloc,
    ],
};

/// `xrdma-fabric` carries the per-packet data path: the simulation rules
/// plus P1, which keeps the zero-copy payload contract from regressing.
pub const FABRIC_RULES: RuleSet = RuleSet {
    rules: &[
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::NondeterministicIter,
        Rule::IntraWorldParallelism,
        Rule::RawTelemetry,
        Rule::UngatedFaultHook,
        Rule::HotPathAlloc,
    ],
};

/// `xrdma-rnic` is both a public API surface (D5) and the other half of
/// the per-packet data path (P1).
pub const RNIC_RULES: RuleSet = RuleSet {
    rules: &[
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::NondeterministicIter,
        Rule::IntraWorldParallelism,
        Rule::UnwrapInApi,
        Rule::RawTelemetry,
        Rule::UngatedFaultHook,
        Rule::HotPathAlloc,
    ],
};

/// `xrdma-telemetry` itself defines `emit_raw` (it is the hub's delivery
/// path under the `tele!` macro), so T1 does not apply there; the
/// determinism rules still do.
pub const TELEMETRY_CRATE_RULES: RuleSet = RuleSet {
    rules: &[
        Rule::WallClock,
        Rule::AmbientRandomness,
        Rule::NondeterministicIter,
        Rule::IntraWorldParallelism,
    ],
};

/// Crates the pass walks, with their rule sets. `src/` only: test code may
/// use whatever it likes (tests run outside worlds).
pub fn workspace_targets() -> Vec<(&'static str, RuleSet)> {
    vec![
        ("crates/sim", SIM_RULES),
        ("crates/fabric", FABRIC_RULES),
        ("crates/core", API_RULES),
        ("crates/rnic", RNIC_RULES),
        // The layers above the middleware also run inside worlds; they get
        // the determinism rules (not D5 — they are experiment drivers, not
        // a public API).
        ("crates/apps", SIM_RULES),
        ("crates/analysis", SIM_RULES),
        ("crates/baselines", SIM_RULES),
        ("crates/telemetry", TELEMETRY_CRATE_RULES),
        // The fault injector runs inside worlds too (its windows are
        // events); it never calls itself through the `xrdma_faults` path,
        // so F1 is vacuous there but harmless.
        ("crates/faults", SIM_RULES),
    ]
}

// ---------------------------------------------------------------------------
// Source model: comment/string stripping with line fidelity
// ---------------------------------------------------------------------------

/// A source file after lexical preprocessing: `code` has comments and
/// string/char literal *contents* blanked (structure and line numbers
/// preserved), `raw` is the original, and `allows` records the escape-hatch
/// annotations found in comments.
pub struct PreparedSource {
    pub code_lines: Vec<String>,
    pub raw_lines: Vec<String>,
    /// (line, rule) pairs: annotation on line N covers lines N and N+1.
    pub allows: Vec<(usize, Rule)>,
    /// Annotations with a missing/empty reason: hard errors.
    pub malformed_allows: Vec<usize>,
}

/// Strip comments and literal contents from Rust source, preserving line
/// structure so findings carry accurate line numbers. Handles nested block
/// comments, raw strings with hashes, char literals vs. lifetimes.
pub fn prepare(source: &str) -> PreparedSource {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment: blank to end of line.
                while i < n && bytes[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < n {
                    if bytes[i] == '\\' && i + 1 < n {
                        out.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if is_raw_string_start(&bytes, i) => {
                // r"..." or r#"..."# etc.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < n && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                // bytes[j] == '"'
                out.push('r');
                for _ in 0..hashes {
                    out.push('#');
                }
                out.push('"');
                i = j + 1;
                while i < n {
                    if bytes[i] == '"' && closes_raw(&bytes, i, hashes) {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes within a
                // few chars; a lifetime has no closing quote.
                if let Some(close) = char_literal_end(&bytes, i) {
                    out.push('\'');
                    for &b in &bytes[i + 1..close] {
                        out.push(if b == '\n' { '\n' } else { ' ' });
                    }
                    out.push('\'');
                    i = close + 1;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }

    let code_lines: Vec<String> = out.lines().map(str::to_string).collect();
    let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (idx, raw) in raw_lines.iter().enumerate() {
        if let Some(pos) = raw.find("xrdma-lint:") {
            let rest = raw[pos + "xrdma-lint:".len()..].trim_start();
            if let Some(args) = rest.strip_prefix("allow(") {
                if let Some(end) = args.find(')') {
                    let name = args[..end].trim();
                    let tail = args[end + 1..].trim_start();
                    let has_reason = tail
                        .strip_prefix("--")
                        .map(|r| !r.trim().is_empty())
                        .unwrap_or(false);
                    match (Rule::from_name(name), has_reason) {
                        (Some(rule), true) => allows.push((idx + 1, rule)),
                        _ => malformed.push(idx + 1),
                    }
                } else {
                    malformed.push(idx + 1);
                }
            } else {
                malformed.push(idx + 1);
            }
        }
    }

    PreparedSource {
        code_lines,
        raw_lines,
        allows,
        malformed_allows: malformed,
    }
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Preceded by an identifier char? Then it's part of a name like `for`.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

fn closes_raw(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// If `bytes[i]` starts a char literal, return the index of its closing
/// quote; `None` for lifetimes.
fn char_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    let n = bytes.len();
    if i + 1 >= n {
        return None;
    }
    if bytes[i + 1] == '\\' {
        // Escaped: scan to the next '\'' within a small window.
        (i + 2..n.min(i + 12)).find(|&j| bytes[j] == '\'' && bytes[j - 1] != '\\')
    } else if i + 2 < n && bytes[i + 2] == '\'' && bytes[i + 1] != '\'' {
        Some(i + 2)
    } else {
        None
    }
}

/// Mark which lines fall inside a `#[cfg(test)]` module. The determinism
/// contract governs code that runs inside a `World`; unit tests run outside
/// worlds (and through the harness) and may use whatever std offers.
pub fn test_mod_lines(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut depth: i32 = 0;
    // Depths at which a #[cfg(test)] mod body is open.
    let mut test_depths: Vec<i32> = Vec::new();
    let mut armed = false;
    for (idx, line) in code_lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.contains("#[cfg(test)]") {
            armed = true;
        }
        let opens_test_mod = armed && (trimmed.starts_with("mod ") || trimmed.contains(" mod "));
        if !test_depths.is_empty() {
            in_test[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_test_mod && test_depths.is_empty() {
                        test_depths.push(depth);
                        armed = false;
                        in_test[idx] = true;
                    }
                }
                '}' => {
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
    }
    in_test
}

/// Mark which lines are covered by a `#[cfg(feature = "faults")]` gate.
/// The attribute covers the item/statement that follows it: either up to
/// the matching `}` of the first brace it opens (blocks, fns, `if`/`match`
/// statements) or up to a `;` / `,` at the attribute's depth (plain
/// statements, struct fields). String contents are blanked in `code_lines`,
/// so the feature name is matched against `raw_lines`.
pub fn fault_gated_lines(code_lines: &[String], raw_lines: &[String]) -> Vec<bool> {
    let mut gated = vec![false; code_lines.len()];
    let mut depth: i32 = 0;
    // Depths at which a gated braced region is open.
    let mut gate_depths: Vec<i32> = Vec::new();
    // Saw the attribute; the gated item has not opened a brace yet.
    let mut armed = false;
    // Paren/bracket nesting within the armed item's head, so a `,` inside
    // an argument list (`fn f(a: A, b: B) {`) doesn't end the region.
    let mut inner: i32 = 0;
    for (idx, line) in code_lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.contains("#[cfg(") && raw_lines[idx].contains("feature = \"faults\"") {
            armed = true;
            inner = 0;
        }
        if armed || !gate_depths.is_empty() {
            gated[idx] = true;
        }
        // Further attributes between the cfg and its item (e.g. a derive
        // with commas) must not end the armed region.
        let is_attr_line = trimmed.starts_with("#[");
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if armed {
                        gate_depths.push(depth);
                        armed = false;
                    }
                }
                '}' => {
                    if gate_depths.last() == Some(&depth) {
                        gate_depths.pop();
                    }
                    depth -= 1;
                }
                '(' | '[' if armed => inner += 1,
                ')' | ']' if armed => inner -= 1,
                ';' | ',' if armed && !is_attr_line && inner == 0 => {
                    armed = false;
                }
                _ => {}
            }
        }
    }
    gated
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

/// Identifier-boundary substring search: `needle` must not be embedded in a
/// longer identifier.
fn contains_ident(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + needle.len();
        let after_ok = after >= line.len()
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Per-file analysis context.
struct FileCtx<'a> {
    prepared: &'a PreparedSource,
    /// Identifiers known (by declaration or construction) to be
    /// `HashMap`/`HashSet` values in this file.
    hash_idents: Vec<String>,
    /// Lines under a `#[cfg(feature = "faults")]` gate (F1).
    fault_gated: Vec<bool>,
}

fn collect_hash_idents(prepared: &PreparedSource) -> Vec<String> {
    let mut idents = Vec::new();
    for line in &prepared.code_lines {
        // Field or binding declarations whose type mentions a hash
        // container: `name: HashMap<..>`, `name: RefCell<HashMap<..>>`,
        // `let name: HashSet<..>`, and constructions `name = HashMap::new()`.
        for marker in ["HashMap", "HashSet"] {
            if !line.contains(marker) {
                continue;
            }
            if let Some(colon) = line.find(':') {
                let (head, tail) = line.split_at(colon);
                if tail.contains(marker) {
                    if let Some(name) = trailing_ident(head) {
                        push_unique(&mut idents, name);
                    }
                }
            }
            if let Some(eq) = line.find('=') {
                let (head, tail) = line.split_at(eq);
                if tail.contains(&format!("{marker}::")) {
                    if let Some(name) = trailing_ident(head.trim_end()) {
                        push_unique(&mut idents, name);
                    }
                }
            }
        }
    }
    idents
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// The last identifier in `s` (e.g. the field/binding name before `:`).
fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    if start < end {
        let id = &s[start..end];
        if id
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return Some(id.to_string());
        }
    }
    None
}

/// Iteration-shaped method calls whose order leaks into behavior.
const ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".values()",
    ".values_mut()",
    ".keys()",
    ".drain()",
    ".retain(",
    ".into_iter()",
];

/// The identifier a method chain like `self.qps.borrow().values()` hangs
/// off: strips interior-mutability adapters, then takes the last path
/// segment.
fn chain_base_ident(prefix: &str) -> Option<String> {
    let mut p = prefix.trim_end();
    for adapter in [
        ".borrow()",
        ".borrow_mut()",
        ".lock()",
        ".as_ref()",
        ".as_mut()",
    ] {
        if let Some(stripped) = p.strip_suffix(adapter) {
            p = stripped;
        }
    }
    trailing_ident(p)
}

/// Files carrying the per-packet or per-WR data path, where P1 applies.
/// Everything else in the fabric/RNIC/core crates (config, memory
/// registration, stats aggregation) allocates at setup or teardown time
/// and is exempt. `cq.rs` is the shared-CQ drain and `channel.rs` the
/// send/completion path of the middleware.
pub const HOT_PATH_FILES: &[&str] = &[
    "port.rs",
    "switch.rs",
    "fabric.rs",
    "engine.rs",
    "wire.rs",
    "cq.rs",
    "channel.rs",
];

/// Identifiers that name payload byte buffers; `.clone()` on one of these
/// in a hot file duplicates packet data.
const PAYLOAD_IDENTS: &[&str] = &["data", "payload", "body", "bytes", "buf", "frag", "gather"];

fn check_line(rule: Rule, line_no: usize, ctx: &FileCtx, file: &Path, out: &mut Vec<Violation>) {
    let line = &ctx.prepared.code_lines[line_no - 1];
    let mut hit = |message: String| {
        out.push(Violation {
            rule,
            file: file.to_path_buf(),
            line: line_no,
            snippet: ctx.prepared.raw_lines[line_no - 1].clone(),
            message,
        });
    };
    match rule {
        Rule::WallClock => {
            for pat in ["Instant", "SystemTime"] {
                if contains_ident(line, pat) {
                    hit(format!(
                        "wall-clock `{pat}` in a simulation crate; use `World::now()` \
                         (virtual time) instead"
                    ));
                    return;
                }
            }
        }
        Rule::AmbientRandomness => {
            for pat in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
                if contains_ident(line, pat) {
                    hit(format!(
                        "ambient randomness `{pat}`; draw from a forked `xrdma_sim::SimRng` \
                         stream instead"
                    ));
                    return;
                }
            }
            if line.contains("rand::random") {
                hit("ambient randomness `rand::random`; draw from a forked \
                     `xrdma_sim::SimRng` stream instead"
                    .to_string());
            }
        }
        Rule::NondeterministicIter => {
            for m in ITER_METHODS {
                let mut search = 0;
                while let Some(pos) = line[search..].find(m) {
                    let abs = search + pos;
                    if let Some(base) = chain_base_ident(&line[..abs]) {
                        if ctx.hash_idents.contains(&base) {
                            hit(format!(
                                "order-dependent iteration over hash container `{base}` \
                                 (`{}`); use BTreeMap/BTreeSet or sort keys first",
                                m.trim_end_matches('(')
                            ));
                            return;
                        }
                    }
                    search = abs + m.len();
                }
            }
            // `for x in &map` / `for x in map` over a known hash ident.
            if let Some(pos) = line.find("for ") {
                if let Some(inpos) = line[pos..].find(" in ") {
                    let expr = line[pos + inpos + 4..].trim();
                    let expr = expr.split('{').next().unwrap_or(expr).trim();
                    let expr = expr
                        .trim_start_matches('&')
                        .trim_start_matches("mut ")
                        .trim();
                    if let Some(base) = trailing_ident(expr) {
                        if expr
                            .chars()
                            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
                            && ctx.hash_idents.contains(&base)
                        {
                            hit(format!(
                                "order-dependent `for` loop over hash container `{base}`; \
                                 use BTreeMap/BTreeSet or sort keys first"
                            ));
                        }
                    }
                }
            }
        }
        Rule::IntraWorldParallelism => {
            if contains_ident(line, "spawn")
                && (line.contains("thread::spawn") || line.contains("std::thread::spawn"))
            {
                hit(
                    "`thread::spawn` inside a simulation crate; parallelism happens across \
                     worlds, never inside one"
                        .to_string(),
                );
            } else if line.contains("static mut ") {
                hit(
                    "`static mut` shared state breaks world isolation; thread state through \
                     the `World`"
                        .to_string(),
                );
            }
        }
        Rule::UnwrapInApi => {
            // Handled by the pub-fn scanner (needs function context).
        }
        Rule::RawTelemetry => {
            if contains_ident(line, "emit_raw") {
                hit(
                    "direct `emit_raw` call bypasses the `tele!` macro; events emitted \
                     outside the macro are not compiled out in telemetry-off builds"
                        .to_string(),
                );
            }
        }
        Rule::UngatedFaultHook => {
            if contains_ident(line, "xrdma_faults")
                && !ctx.fault_gated.get(line_no - 1).copied().unwrap_or(false)
            {
                hit(
                    "`xrdma_faults` hook outside a `#[cfg(feature = \"faults\")]` gate; \
                     fault hooks must compile to nothing when the feature is off"
                        .to_string(),
                );
            }
        }
        Rule::HotPathAlloc => {
            let hot = file
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| HOT_PATH_FILES.contains(&n));
            if !hot {
                return;
            }
            for pat in [".to_vec()", "Box::new(", "vec![", "Bytes::from("] {
                if line.contains(pat) {
                    hit(format!(
                        "heap allocation `{}` on the per-packet path; carry payloads as \
                         `bytes::Bytes` slices of the per-message gather buffer (annotate \
                         one-time setup sites with a reason)",
                        pat.trim_end_matches(['(', '['])
                    ));
                    return;
                }
            }
            let mut search = 0;
            while let Some(pos) = line[search..].find(".clone()") {
                let abs = search + pos;
                if let Some(base) = chain_base_ident(&line[..abs]) {
                    if PAYLOAD_IDENTS.contains(&base.as_str()) {
                        hit(format!(
                            "`.clone()` of payload buffer `{base}` on the per-packet path; \
                             `bytes::Bytes` windows are refcounted — slice instead of copying"
                        ));
                        return;
                    }
                }
                search = abs + ".clone()".len();
            }
        }
    }
}

/// Scan for D5: `.unwrap()` / `.expect(` inside the body of a `pub fn`
/// (not `pub(crate)`), outside `#[cfg(test)]` modules.
fn check_unwrap_in_api(ctx: &FileCtx, file: &Path, out: &mut Vec<Violation>) {
    #[derive(Clone, Copy, PartialEq)]
    enum Region {
        Normal,
        PubFn,
        TestMod,
    }
    // Stack of (region kind, brace depth at entry).
    let mut stack: Vec<(Region, i32)> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending: Option<Region> = None;
    let mut cfg_test_armed = false;

    for (idx, line) in ctx.prepared.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim_start();

        if trimmed.contains("#[cfg(test)]") {
            cfg_test_armed = true;
        }
        // A `pub fn` signature opens a public region at its `{`. The
        // signature may span lines; arm and resolve at the next `{`.
        let is_pub_fn = (trimmed.starts_with("pub fn ") || trimmed.contains(" pub fn "))
            && !trimmed.starts_with("pub(crate)");
        if is_pub_fn && pending.is_none() {
            pending = Some(Region::PubFn);
        }
        if cfg_test_armed && trimmed.starts_with("mod ") {
            pending = Some(Region::TestMod);
            cfg_test_armed = false;
        }

        let in_pub_api = stack
            .iter()
            .rev()
            .find(|(r, _)| *r != Region::Normal)
            .map(|(r, _)| *r == Region::PubFn)
            .unwrap_or(false);

        // A one-line `pub fn api() { x.unwrap() }` opens and closes its
        // region within this line, so also check the line body directly.
        let in_test = stack.iter().any(|(r, _)| *r == Region::TestMod);
        let check_here = !in_test && (in_pub_api || (is_pub_fn && line.contains('{')));
        if check_here {
            let from = if in_pub_api {
                0
            } else {
                line.find('{').unwrap_or(0)
            };
            for pat in [".unwrap()", ".expect("] {
                if line[from..].contains(pat) && !line.contains("unwrap_or") {
                    out.push(Violation {
                        rule: Rule::UnwrapInApi,
                        file: file.to_path_buf(),
                        line: line_no,
                        snippet: ctx.prepared.raw_lines[idx].clone(),
                        message: format!(
                            "`{}` on a public API path; return an error (XrdmaError / \
                             VerbsError) or assert via debug_invariants",
                            pat.trim_end_matches('(')
                        ),
                    });
                    break;
                }
            }
        }

        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    let region = pending.take().unwrap_or(Region::Normal);
                    stack.push((region, depth));
                }
                '}' => {
                    while let Some(&(_, d)) = stack.last() {
                        if d >= depth {
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                    depth -= 1;
                }
                ';' => {
                    // `pub fn f(...);` in a trait: the pending region never
                    // opens.
                    pending = None;
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Result of analyzing one source file.
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub unused_allows: Vec<UnusedAllow>,
    pub malformed_allows: Vec<(PathBuf, usize)>,
}

/// Analyze one file's source text under a rule set.
pub fn analyze_source(file: &Path, source: &str, rules: RuleSet) -> FileReport {
    let prepared = prepare(source);
    let ctx = FileCtx {
        hash_idents: collect_hash_idents(&prepared),
        fault_gated: fault_gated_lines(&prepared.code_lines, &prepared.raw_lines),
        prepared: &prepared,
    };

    let in_test = test_mod_lines(&prepared.code_lines);
    let mut raw_violations = Vec::new();
    for rule in rules.rules {
        if *rule == Rule::UnwrapInApi {
            check_unwrap_in_api(&ctx, file, &mut raw_violations);
        } else {
            for line_no in 1..=ctx.prepared.code_lines.len() {
                check_line(*rule, line_no, &ctx, file, &mut raw_violations);
            }
        }
    }
    raw_violations.retain(|v| !in_test.get(v.line - 1).copied().unwrap_or(false));

    // Apply allow annotations: an allow on line N suppresses matching
    // violations on N (trailing comment) and N+1 (comment-above).
    let mut used = vec![false; prepared.allows.len()];
    raw_violations.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    let violations: Vec<Violation> = raw_violations
        .into_iter()
        .filter(|v| {
            for (ai, (aline, arule)) in prepared.allows.iter().enumerate() {
                if *arule == v.rule && (v.line == *aline || v.line == *aline + 1) {
                    used[ai] = true;
                    return false;
                }
            }
            true
        })
        .collect();

    let unused_allows = prepared
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|((line, rule), _)| UnusedAllow {
            file: file.to_path_buf(),
            line: *line,
            rule: *rule,
        })
        .collect();

    let malformed_allows = prepared
        .malformed_allows
        .iter()
        .map(|l| (file.to_path_buf(), *l))
        .collect();

    FileReport {
        violations,
        unused_allows,
        malformed_allows,
    }
}

/// Recursively collect `.rs` files under `dir`.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        // Deterministic walk order — the lint practices what it preaches.
        children.sort();
        for path in children {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Walk the workspace at `root` and analyze every target crate's `src/`.
pub fn analyze_workspace(root: &Path) -> FileReport {
    let mut report = FileReport {
        violations: Vec::new(),
        unused_allows: Vec::new(),
        malformed_allows: Vec::new(),
    };
    for (rel, rules) in workspace_targets() {
        let src = root.join(rel).join("src");
        for file in rust_files(&src) {
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            let display = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let mut r = analyze_source(&display, &text, rules);
            report.violations.append(&mut r.violations);
            report.unused_allows.append(&mut r.unused_allows);
            report.malformed_allows.append(&mut r.malformed_allows);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, rules: RuleSet) -> Vec<Violation> {
        analyze_source(Path::new("test.rs"), src, rules).violations
    }

    #[test]
    fn d1_catches_instant_now() {
        let v = run("fn f() { let t = Instant::now(); }", SIM_RULES);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WallClock);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn d1_catches_use_and_qualified_paths() {
        assert_eq!(run("use std::time::Instant;", SIM_RULES).len(), 1);
        assert_eq!(
            run("let t = std::time::SystemTime::now();", SIM_RULES).len(),
            1
        );
    }

    #[test]
    fn d1_ignores_comments_strings_and_longer_idents() {
        assert!(run("// the Instant the window stalled", SIM_RULES).is_empty());
        assert!(run("let m = \"Instant::now\";", SIM_RULES).is_empty());
        assert!(run("struct InstantaneousRate;", SIM_RULES).is_empty());
    }

    #[test]
    fn d2_catches_thread_rng() {
        let v = run("let x = rand::thread_rng().gen::<u64>();", SIM_RULES);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AmbientRandomness);
    }

    #[test]
    fn d3_catches_hashmap_iteration() {
        let src = "struct S { qps: RefCell<HashMap<u32, Qp>> }\n\
                   fn f(s: &S) { for qp in s.qps.borrow().values() { qp.reset(); } }";
        let v = run(src, SIM_RULES);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NondeterministicIter);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn d3_catches_for_loop_over_hashset() {
        let src = "fn f() { let congested = HashSet::new();\n\
                   for q in &congested { go(q); } }";
        let v = run(src, SIM_RULES);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn d3_ignores_lookups_and_btreemap() {
        let src = "struct S { m: HashMap<u32, u64> }\n\
                   fn f(s: &S) { s.m.get(&1); s.m.insert(2, 3); s.m.contains_key(&4); }";
        assert!(run(src, SIM_RULES).is_empty());
        let src2 = "struct S { m: BTreeMap<u32, u64> }\n\
                    fn f(s: &S) { for v in s.m.values() { use_it(v); } }";
        assert!(run(src2, SIM_RULES).is_empty());
    }

    #[test]
    fn t1_catches_direct_emit_raw() {
        let v = run(
            "fn f() { xrdma_telemetry::hub::emit_raw(EventKind::SeqDuplicate { seq }); }",
            SIM_RULES,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RawTelemetry);
    }

    #[test]
    fn t1_ignores_tele_macro_and_comments() {
        assert!(run("fn f() { tele!(SeqDuplicate { seq: 1 }); }", SIM_RULES).is_empty());
        assert!(run("// emit_raw is the hub's delivery path", SIM_RULES).is_empty());
        assert!(run("fn emit_raw_counts() {}", SIM_RULES).is_empty());
    }

    #[test]
    fn t1_not_applied_to_the_telemetry_crate_itself() {
        let src = "pub fn emit_raw(kind: EventKind) {}";
        assert!(run(src, TELEMETRY_CRATE_RULES).is_empty());
        assert_eq!(run(src, SIM_RULES).len(), 1);
    }

    #[test]
    fn d3_allow_annotation_suppresses() {
        let src = "struct S { m: HashMap<u32, u64> }\n\
                   // xrdma-lint: allow(nondeterministic-iter) -- lookup cache, order-free sum\n\
                   fn f(s: &S) -> u64 { s.m.values().sum() }";
        let report = analyze_source(Path::new("t.rs"), src, SIM_RULES);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.unused_allows.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// xrdma-lint: allow(nondeterministic-iter)\nfn f() {}";
        let report = analyze_source(Path::new("t.rs"), src, SIM_RULES);
        assert_eq!(report.malformed_allows.len(), 1);
    }

    #[test]
    fn unused_allow_reported() {
        let src = "// xrdma-lint: allow(wall-clock) -- no longer needed\nfn f() {}";
        let report = analyze_source(Path::new("t.rs"), src, SIM_RULES);
        assert_eq!(report.unused_allows.len(), 1);
    }

    #[test]
    fn d4_catches_thread_spawn_and_static_mut() {
        assert_eq!(
            run("fn f() { std::thread::spawn(|| {}); }", SIM_RULES).len(),
            1
        );
        assert_eq!(run("static mut COUNTER: u64 = 0;", SIM_RULES).len(), 1);
    }

    #[test]
    fn d5_catches_unwrap_in_pub_fn_only() {
        let src = "pub fn api(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
                   fn internal(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
                   pub(crate) fn semi(x: Option<u32>) -> u32 {\n    x.unwrap()\n}";
        let v = run(src, API_RULES);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnwrapInApi);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn determinism_rules_skip_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let s = HashSet::new();\n        for x in s.iter() { go(x); }\n        let t = Instant::now();\n    }\n}";
        assert!(run(src, SIM_RULES).is_empty());
    }

    #[test]
    fn d5_skips_test_modules() {
        let src =
            "#[cfg(test)]\nmod tests {\n    pub fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n}";
        assert!(run(src, API_RULES).is_empty());
    }

    #[test]
    fn d5_not_applied_under_sim_rules() {
        let src = "pub fn api(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run(src, SIM_RULES).is_empty());
    }

    #[test]
    fn f1_catches_ungated_fault_hook() {
        let v = run(
            "fn f(p: &Port) { if xrdma_faults::port_drop(&p.label) { return; } }",
            SIM_RULES,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UngatedFaultHook);
    }

    #[test]
    fn f1_accepts_gated_block_and_statement() {
        let src = "fn f(p: &Port) {\n\
                   #[cfg(feature = \"faults\")]\n\
                   if xrdma_faults::port_drop(&p.label) {\n\
                       xrdma_faults::note();\n\
                       return;\n\
                   }\n\
                   #[cfg(feature = \"faults\")]\n\
                   let limit = xrdma_faults::port_limit(&p.label).unwrap_or(0);\n\
                   }";
        assert!(run(src, SIM_RULES).is_empty());
    }

    #[test]
    fn f1_accepts_gated_fn_and_field() {
        let src = "struct S {\n\
                   #[cfg(feature = \"faults\")]\n\
                   paused: RefCell<Vec<xrdma_faults::NodeCmd>>,\n\
                   other: u32,\n\
                   }\n\
                   #[cfg(feature = \"faults\")]\n\
                   fn cmd(c: xrdma_faults::NodeCmd) {\n\
                       use xrdma_faults::NodeCmd;\n\
                       drop(c);\n\
                   }";
        assert!(run(src, SIM_RULES).is_empty());
    }

    #[test]
    fn f1_gate_survives_commas_in_the_item_head() {
        let src = "fn f() {\n\
                   #[cfg(feature = \"faults\")]\n\
                   match xrdma_faults::rnic_connect_fault(a.0, b.0) {\n\
                       None => {}\n\
                       Some(xrdma_faults::ConnectFault::Blackhole) => { go(); }\n\
                   }\n\
                   }\n\
                   #[cfg(feature = \"faults\")]\n\
                   fn cmd(self: &Rc<Self>, c: xrdma_faults::NodeCmd) {\n\
                       use xrdma_faults::NodeCmd;\n\
                   }";
        assert!(run(src, SIM_RULES).is_empty());
    }

    #[test]
    fn f1_gate_ends_with_its_region() {
        let src = "fn f() {\n\
                   #[cfg(feature = \"faults\")]\n\
                   {\n\
                       xrdma_faults::note();\n\
                   }\n\
                   xrdma_faults::note();\n\
                   }";
        let v = run(src, SIM_RULES);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn f1_other_cfg_gates_do_not_count() {
        let v = run(
            "#[cfg(feature = \"telemetry\")]\nfn f() { xrdma_faults::note(); }",
            SIM_RULES,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UngatedFaultHook);
    }

    #[test]
    fn p1_catches_alloc_in_hot_file() {
        let src = "fn deliver(pkt: Packet) { let b = pkt.data.to_vec(); sink(b); }";
        let v =
            analyze_source(Path::new("crates/fabric/src/port.rs"), src, FABRIC_RULES).violations;
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HotPathAlloc);

        let v = analyze_source(
            Path::new("crates/rnic/src/engine.rs"),
            "fn seg() { let body = Box::new(TokenedBth { token: 0 }); }",
            RNIC_RULES,
        )
        .violations;
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HotPathAlloc);
    }

    #[test]
    fn p1_catches_payload_clone_but_not_handle_clone() {
        let src = "fn f(pkt: &Packet) { let d = pkt.payload.clone(); let p = port.clone(); }";
        let v =
            analyze_source(Path::new("crates/fabric/src/switch.rs"), src, FABRIC_RULES).violations;
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("payload"), "{v:?}");
    }

    #[test]
    fn p1_ignores_non_hot_files() {
        let src = "fn build() { let v = vec![0u8; 64]; let b = Box::new(v); }";
        let v =
            analyze_source(Path::new("crates/fabric/src/stats.rs"), src, FABRIC_RULES).violations;
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn p1_suppressed_by_allow_annotation() {
        let src = "fn build() {\n\
                   // xrdma-lint: allow(hot-path-alloc) -- one-time topology construction\n\
                   let ports = vec![Vec::new(); n];\n\
                   }";
        let report = analyze_source(Path::new("crates/fabric/src/fabric.rs"), src, FABRIC_RULES);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.unused_allows.is_empty());
    }

    #[test]
    fn p1_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let b = vec![0u8; 9].to_vec(); }\n}";
        let v =
            analyze_source(Path::new("crates/fabric/src/port.rs"), src, FABRIC_RULES).violations;
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_strings_and_char_literals_do_not_confuse() {
        let src = "fn f() { let s = r#\"Instant::now() \"quoted\"\"#; let c = '\"'; let l: &'static str = \"x\"; }";
        assert!(run(src, SIM_RULES).is_empty());
    }

    #[test]
    fn planting_instant_in_fabric_like_source_fails() {
        // The acceptance criterion: an Instant::now() planted in a
        // simulation crate must produce a violation.
        let src = "use std::time::Instant;\npub fn now_ns() -> u64 { Instant::now().elapsed().as_nanos() as u64 }";
        let v = run(src, SIM_RULES);
        assert!(v.iter().any(|v| v.rule == Rule::WallClock));
    }
}
