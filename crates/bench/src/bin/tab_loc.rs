//! §VII-B programming simplification: "to implement data plane and
//! protocols in Pangu, 2000 LOC native RDMA code is needed. In comparison,
//! only about 40 LOC of X-RDMA APIs is required."
//!
//! We regenerate the comparison from this repository itself: the
//! application-visible X-RDMA code of the quickstart example versus the
//! verbs-level machinery a native implementation must own (the generic AM
//! endpoint of the baselines crate plus the protocol pieces the middleware
//! had to build — window, reliability glue, registration management).

use std::fs;
use std::path::Path;

use xrdma_bench::Report;

/// Count non-blank, non-comment lines of a Rust source file.
fn loc(path: &Path) -> usize {
    let Ok(src) = fs::read_to_string(path) else {
        return 0;
    };
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

fn locate(rel: &str) -> std::path::PathBuf {
    let p = Path::new(rel);
    if p.exists() {
        p.to_path_buf()
    } else {
        Path::new("../..").join(rel)
    }
}

fn main() {
    // Application code with X-RDMA: the quickstart's app section — the
    // listen/connect/request/respond block. We count the whole example and
    // subtract its world-building scaffolding (everything a socket program
    // wouldn't write either).
    let quickstart = loc(&locate("examples/quickstart.rs"));
    // The ~8 lines of simulator setup aren't application logic.
    let xrdma_app_loc = quickstart.saturating_sub(14);

    // Native verbs equivalent: what an application team owns without the
    // middleware — endpoint construction, buffer slicing/registration,
    // eager/rendezvous framing, CQ polling and dispatch (baselines::am),
    // plus the seq-ack window and header codec the middleware encapsulates
    // (a floor; production Pangu also owned failure handling, making the
    // paper's 2000 LOC plausible).
    let native_loc = loc(&locate("crates/baselines/src/am.rs"))
        + loc(&locate("crates/core/src/seqack.rs"))
        + loc(&locate("crates/core/src/proto.rs"));

    let mut rep = Report::new(
        "tab_loc",
        "lines of application code: native verbs vs X-RDMA APIs",
    );
    rep.row(
        "X-RDMA application LOC (ping-pong/RPC)",
        "~40",
        format!("{xrdma_app_loc}"),
        (20..=80).contains(&xrdma_app_loc),
    );
    rep.row(
        "native verbs equivalent LOC (floor)",
        "~2000 (full Pangu data plane)",
        format!("{native_loc}"),
        native_loc > 500,
    );
    rep.row(
        "reduction factor",
        "~50x",
        format!("{:.0}x", native_loc as f64 / xrdma_app_loc.max(1) as f64),
        native_loc / xrdma_app_loc.max(1) >= 10,
    );
    rep.finish();
}
