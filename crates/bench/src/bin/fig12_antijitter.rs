//! Figure 12: anti-jitter under a production surge — ESSD (a) and X-DB
//! (b) take a ~300 % throughput surge; latency must not follow.
//!
//! Paper claims: "the throughput of ESSD is increased by nearly 300 %.
//! However, thanks to anti-jitter strategies (protocol extension and
//! resource management), the latency has no significant increment during
//! this period." Same for X-DB.

use xrdma_apps::essd::EssdConfig;
use xrdma_apps::pangu::{Pangu, PanguConfig};
use xrdma_apps::xdb::XdbConfig;
use xrdma_apps::{EssdFrontend, LoadSchedule, XdbFrontend};
use xrdma_bench::scenarios::net;
use xrdma_bench::Report;
use xrdma_core::XrdmaConfig;
use xrdma_fabric::FabricConfig;
use xrdma_rnic::RnicConfig;
use xrdma_sim::Dur;

struct Windows {
    base_rate: f64,
    surge_rate: f64,
    base_lat_us: f64,
    surge_lat_us: f64,
    tput_series: Vec<(f64, f64)>,
    lat_series: Vec<(f64, f64)>,
}

fn windows(tput: Vec<(f64, f64)>, lat: Vec<(f64, f64)>) -> Windows {
    // Schedule (absolute time): 0–1.5 s base, 1.5–3.0 s surge ×3, then base.
    let mean = |rows: &[(f64, f64)], lo: f64, hi: f64| -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|&&(t, v)| t >= lo && t < hi && v > 0.0)
            .map(|&(_, v)| v)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    Windows {
        base_rate: mean(&tput, 0.7, 1.5),
        surge_rate: mean(&tput, 1.7, 2.9),
        base_lat_us: mean(&lat, 0.7, 1.5),
        surge_lat_us: mean(&lat, 1.7, 2.9),
        tput_series: tput,
        lat_series: lat,
    }
}

fn main() {
    let n = net(FabricConfig::pod(4, 6, 2), 12);
    let pangu = Pangu::deploy(
        &n.fabric,
        &n.cm,
        PanguConfig {
            block_servers: 6,
            chunk_servers: 12,
            chunk_service: Dur::micros(30),
            ..Default::default()
        },
        RnicConfig::default(),
        XrdmaConfig::default(),
        &n.rng,
    );
    n.world.run_for(Dur::millis(500));
    assert!(pangu.mesh_complete());

    let schedule =
        LoadSchedule::surge(Dur::millis(1500), Dur::millis(1500), Dur::millis(1500), 3.0);

    // ESSD on blocks 0..3, X-DB on blocks 3..6.
    let essds: Vec<_> = pangu.blocks[..3]
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let fe = EssdFrontend::new(
                b,
                EssdConfig {
                    io_size: 128 * 1024,
                    base_interval: Dur::micros(1500),
                    queue_depth: 128,
                    bucket: Dur::millis(100),
                },
                schedule.clone(),
                n.rng.fork(&format!("essd{i}")),
            );
            fe.run_for(Dur::millis(4000));
            fe
        })
        .collect();
    let xdbs: Vec<_> = pangu.blocks[3..]
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let fe = XdbFrontend::new(
                b,
                XdbConfig {
                    base_interval: Dur::micros(250),
                    queue_depth: 128,
                    ..Default::default()
                },
                schedule.clone(),
                n.rng.fork(&format!("xdb{i}")),
            );
            fe.run_for(Dur::millis(4000));
            fe
        })
        .collect();
    n.world.run_for(Dur::millis(4600));

    // Aggregate ESSD series (bandwidth MB/s per 100 ms bucket, latency µs).
    let agg = |rows: Vec<Vec<(f64, f64)>>| -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = Vec::new();
        for series in rows {
            for (i, (t, v)) in series.into_iter().enumerate() {
                if i >= out.len() {
                    out.push((t, v));
                } else {
                    out[i].1 += v;
                }
            }
        }
        out
    };
    let essd_tput = agg(essds
        .iter()
        .map(|f| {
            f.iops
                .borrow()
                .rows()
                .into_iter()
                .map(|(t, v)| (t, v * 10.0 * 128.0 * 1024.0 / 1e6)) // MB/s
                .collect()
        })
        .collect());
    let essd_lat_mean = {
        // Mean over the three front-ends' per-bucket means.
        let all: Vec<Vec<(f64, f64)>> =
            essds.iter().map(|f| f.lat_series.borrow().rows()).collect();
        let mut out = all[0].clone();
        for s in &all[1..] {
            for (i, &(_, v)) in s.iter().enumerate() {
                if i < out.len() && v > 0.0 {
                    out[i].1 = (out[i].1 + v) / 2.0;
                }
            }
        }
        out
    };
    let e = windows(essd_tput, essd_lat_mean);

    let xdb_tput = agg(xdbs
        .iter()
        .map(|f| {
            f.tps
                .borrow()
                .rows()
                .into_iter()
                .map(|(t, v)| (t, v * 10.0))
                .collect()
        })
        .collect());
    let xdb_lat = {
        let all: Vec<Vec<(f64, f64)>> = xdbs.iter().map(|f| f.lat_series.borrow().rows()).collect();
        let mut out = all[0].clone();
        for s in &all[1..] {
            for (i, &(_, v)) in s.iter().enumerate() {
                if i < out.len() && v > 0.0 {
                    out[i].1 = (out[i].1 + v) / 2.0;
                }
            }
        }
        out
    };
    let x = windows(xdb_tput, xdb_lat);

    let mut rep = Report::new(
        "fig12_antijitter",
        "ESSD / X-DB surge: throughput triples, latency stays flat",
    );
    rep.row(
        "ESSD throughput surge",
        "~300% (≈3x)",
        format!(
            "{:.1}x ({:.0} -> {:.0} MB/s)",
            e.surge_rate / e.base_rate,
            e.base_rate,
            e.surge_rate
        ),
        e.surge_rate / e.base_rate > 2.0,
    );
    rep.row(
        "ESSD latency increment during surge",
        "no significant increment",
        format!(
            "{:.0}% ({:.0} -> {:.0} µs)",
            (e.surge_lat_us / e.base_lat_us - 1.0) * 100.0,
            e.base_lat_us,
            e.surge_lat_us
        ),
        e.surge_lat_us / e.base_lat_us < 1.5,
    );
    rep.row(
        "X-DB throughput surge",
        "~3x",
        format!(
            "{:.1}x ({:.0} -> {:.0} tps)",
            x.surge_rate / x.base_rate,
            x.base_rate,
            x.surge_rate
        ),
        x.surge_rate / x.base_rate > 2.0,
    );
    rep.row(
        "X-DB latency increment during surge",
        "jitter mitigated / stable",
        format!(
            "{:.0}% ({:.0} -> {:.0} µs)",
            (x.surge_lat_us / x.base_lat_us - 1.0) * 100.0,
            x.base_lat_us,
            x.surge_lat_us
        ),
        x.surge_lat_us / x.base_lat_us < 1.5,
    );
    rep.series("essd_tput_mbps", e.tput_series);
    rep.series("essd_lat_us", e.lat_series);
    rep.series("xdb_tps", x.tput_series);
    rep.series("xdb_lat_us", x.lat_series);
    rep.finish();
}
