//! The RoCE-style wire protocol between simulated RNICs: packet bodies and
//! payload fragments.
//!
//! These structs travel inside `xrdma_fabric::Packet::body` (as a
//! `Box<dyn Any>`); only RNIC engines construct or interpret them.

use bytes::Bytes;

use crate::verbs::Qpn;

/// Data bytes of one fragment: real bytes or size-only.
#[derive(Clone, Debug)]
pub enum FragData {
    Bytes(Bytes),
    Zero(u32),
    /// Real bytes followed by simulated padding (see `Payload::Padded`).
    Padded {
        head: Bytes,
        pad: u32,
    },
}

impl FragData {
    pub fn len(&self) -> u32 {
        match self {
            FragData::Bytes(b) => b.len() as u32,
            FragData::Zero(n) => *n,
            FragData::Padded { head, pad } => head.len() as u32 + pad,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A BTH plus the connection token it was sent under. This is what
/// actually travels in `Packet::body`; receivers drop token mismatches
/// (stale packets from a recycled QP's previous connection).
#[derive(Clone, Debug)]
pub struct TokenedBth {
    pub token: u64,
    pub bth: Bth,
}

/// The requester-side operation code carried on data packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOp {
    Send,
    Write,
    WriteImm,
}

/// A packet body on the responder-bound (request) direction.
#[derive(Clone, Debug)]
pub enum Bth {
    /// One MTU fragment of a Send/Write/WriteImm message.
    Data {
        dst_qpn: Qpn,
        src_qpn: Qpn,
        /// Message sequence number within the QP's request stream.
        msg_seq: u64,
        op: WireOp,
        /// Byte offset of this fragment in the message.
        frag_off: u64,
        /// Total message length.
        total_len: u64,
        /// True on the final fragment.
        last: bool,
        /// Remote placement for Write/WriteImm (addr, rkey).
        remote: Option<(u64, u32)>,
        imm: Option<u32>,
        data: FragData,
    },
    /// RDMA Read request (single packet; the response streams back).
    ReadReq {
        dst_qpn: Qpn,
        src_qpn: Qpn,
        msg_seq: u64,
        remote_addr: u64,
        rkey: u32,
        len: u64,
    },
    /// 8-byte atomic request.
    AtomicReq {
        dst_qpn: Qpn,
        src_qpn: Qpn,
        msg_seq: u64,
        remote_addr: u64,
        rkey: u32,
        /// None => fetch-add(operand); Some(expect) => CAS(expect, operand).
        compare: Option<u64>,
        operand: u64,
    },
    /// Positive acknowledgment: everything `<= msg_seq` arrived and was
    /// accepted at the responder.
    Ack { dst_qpn: Qpn, msg_seq: u64 },
    /// Negative acknowledgment.
    Nak {
        dst_qpn: Qpn,
        /// The message the responder is waiting for.
        expected_seq: u64,
        kind: NakKind,
    },
    /// One fragment of a Read response.
    ReadResp {
        dst_qpn: Qpn,
        /// The msg_seq of the originating ReadReq.
        msg_seq: u64,
        frag_off: u64,
        total_len: u64,
        last: bool,
        data: FragData,
    },
    /// Atomic response carrying the old value.
    AtomicResp {
        dst_qpn: Qpn,
        msg_seq: u64,
        old_value: u64,
    },
    /// DCQCN congestion notification packet.
    Cnp { dst_qpn: Qpn },
}

/// Why a NAK was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NakKind {
    /// Receiver not ready: no receive WR posted. Retry after the RNR timer.
    Rnr,
    /// Sequence error (a fragment went missing); go-back-N.
    SeqError,
    /// Remote access violation; fatal for the offending WR.
    RemoteAccess,
}

impl Bth {
    /// The QP this packet is addressed to at the receiving node.
    pub fn dst_qpn(&self) -> Qpn {
        match self {
            Bth::Data { dst_qpn, .. }
            | Bth::ReadReq { dst_qpn, .. }
            | Bth::AtomicReq { dst_qpn, .. }
            | Bth::Ack { dst_qpn, .. }
            | Bth::Nak { dst_qpn, .. }
            | Bth::ReadResp { dst_qpn, .. }
            | Bth::AtomicResp { dst_qpn, .. }
            | Bth::Cnp { dst_qpn } => *dst_qpn,
        }
    }

    /// Is this a data-bearing packet (subject to ECN-based CNP generation)?
    pub fn is_data(&self) -> bool {
        matches!(self, Bth::Data { .. } | Bth::ReadResp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_qpn_extraction() {
        let b = Bth::Ack {
            dst_qpn: Qpn(7),
            msg_seq: 3,
        };
        assert_eq!(b.dst_qpn(), Qpn(7));
        let b = Bth::Cnp { dst_qpn: Qpn(9) };
        assert_eq!(b.dst_qpn(), Qpn(9));
        assert!(!b.is_data());
    }

    #[test]
    fn frag_data_len() {
        assert_eq!(FragData::Zero(100).len(), 100);
        assert_eq!(FragData::Bytes(Bytes::from_static(b"xy")).len(), 2);
        assert!(FragData::Zero(0).is_empty());
    }
}
