//! Property-based tests over the core data structures and protocol
//! invariants (DESIGN.md §6): the seq-ack window, the wire header, the
//! sparse memory backing, fragmentation arithmetic, ECMP bounds, and the
//! histogram.

use proptest::prelude::*;

use xrdma_core::proto::{Header, LargeDesc, MsgKind, TraceHdr};
use xrdma_core::seqack::{RxAccept, RxWindow, TxWindow};
use xrdma_fabric::ecmp_hash;
use xrdma_rnic::mem::MemTable;
use xrdma_rnic::{AccessFlags, PageKind, RnicConfig};
use xrdma_sim::stats::Histogram;

proptest! {
    /// The seq-ack pair never deadlocks, never delivers out of order or
    /// twice, and the sender window never exceeds its depth — under any
    /// interleaving of send / complete / ack actions.
    #[test]
    fn seqack_window_invariants(
        depth in 2u32..32,
        actions in proptest::collection::vec(0u8..4, 1..400),
    ) {
        let mut tx = TxWindow::new(depth);
        let mut rx = RxWindow::new(depth);
        // Messages sent but not yet "arrived" at the receiver.
        let mut wire: std::collections::VecDeque<u32> = Default::default();
        // Arrived but not yet completed (e.g. large reads in flight).
        let mut pending: Vec<u32> = Vec::new();
        let mut delivered: Vec<u32> = Vec::new();

        for a in actions {
            match a {
                // Sender: send if window open.
                0 => {
                    if tx.can_send() {
                        wire.push_back(tx.next_seq());
                    }
                }
                // Receiver: accept the next arrival.
                1 => {
                    if let Some(seq) = wire.pop_front() {
                        match rx.on_arrival(seq) {
                            RxAccept::Fresh => pending.push(seq),
                            RxAccept::Duplicate => prop_assert!(false, "no dups on a loss-free wire"),
                        }
                    }
                }
                // Receiver: complete a random pending message (out of order).
                2 => {
                    if !pending.is_empty() {
                        let i = pending.len() / 2;
                        let seq = pending.remove(i);
                        delivered.extend(rx.on_complete(seq));
                    }
                }
                // Ack flows back to the sender.
                _ => {
                    let ack = rx.take_ack();
                    let _ = tx.on_ack(ack).count();
                }
            }
            prop_assert!(tx.in_flight() < depth, "window bound");
        }
        // Deliveries are exactly 0,1,2,... in order.
        for (i, &seq) in delivered.iter().enumerate() {
            prop_assert_eq!(seq, i as u32, "in-order exactly-once delivery");
        }
        // Drain everything: no deadlock at quiescence.
        while let Some(seq) = wire.pop_front() {
            rx.on_arrival(seq);
            pending.push(seq);
        }
        pending.sort_unstable();
        for seq in pending.drain(..) {
            delivered.extend(rx.on_complete(seq));
        }
        let _ = tx.on_ack(rx.take_ack()).count();
        prop_assert_eq!(tx.in_flight(), 0, "all acked at quiescence");
    }

    /// Header encode/decode is a bijection over its field space.
    #[test]
    fn header_roundtrip(
        kind in 0u8..6,
        seq in any::<u32>(),
        ack in any::<u32>(),
        rpc in any::<u32>(),
        len in any::<u64>(),
        large in proptest::option::of((any::<u64>(), any::<u32>())),
        trace in proptest::option::of((any::<u64>(), any::<u64>())),
    ) {
        let kind = match kind {
            0 => MsgKind::Request,
            1 => MsgKind::Response,
            2 => MsgKind::OneWay,
            3 => MsgKind::Ack,
            4 => MsgKind::Nop,
            _ => MsgKind::Close,
        };
        let mut h = Header::new(kind, seq, ack, rpc, len);
        h.large = large.map(|(addr, rkey)| LargeDesc { addr, rkey });
        h.trace = trace.map(|(t1_ns, trace_id)| TraceHdr { t1_ns, trace_id });
        let enc = h.encode();
        let (dec, used) = Header::decode(&enc).expect("decode");
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(dec, h);
    }

    /// Decoding arbitrary bytes never panics, and never "succeeds" on
    /// garbage without the magic byte.
    #[test]
    fn header_decode_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Some((_, used)) = Header::decode(&data) {
            prop_assert!(data[0] == 0xA7);
            prop_assert!(used <= data.len());
        }
    }

    /// Sparse MR backing behaves exactly like a flat byte array under any
    /// sequence of overlapping writes and reads.
    #[test]
    fn sparse_memory_matches_reference(
        ops in proptest::collection::vec(
            (0u64..900, proptest::collection::vec(any::<u8>(), 1..64)),
            1..60
        ),
    ) {
        let table = MemTable::new(0);
        let pd = table.alloc_pd();
        let mr = table.reg_mr(&pd, 1024, AccessFlags::FULL, PageKind::Anonymous, true, false);
        let mut reference = vec![0u8; 1024];
        for (off, data) in &ops {
            let off = (*off).min(1024 - data.len() as u64);
            mr.write(mr.addr + off, data).unwrap();
            reference[off as usize..off as usize + data.len()].copy_from_slice(data);
        }
        let got = mr.read(mr.addr, 1024).unwrap();
        prop_assert_eq!(got, reference);
    }

    /// Segmentation covers the message exactly with no gap or overlap.
    #[test]
    fn fragmentation_partitions_message(len in 0u64..10_000_000, mtu in 256u32..65536) {
        let mut cfg = RnicConfig::default();
        cfg.mtu = mtu;
        let nsegs = cfg.segments(len);
        if len == 0 {
            prop_assert_eq!(nsegs, 1);
        } else {
            prop_assert_eq!(nsegs, len.div_ceil(mtu as u64));
            // Reconstruct the fragment sizes as the engine does.
            let mut covered = 0u64;
            for _ in 0..nsegs {
                let frag = (len - covered).min(mtu as u64);
                prop_assert!(frag > 0);
                covered += frag;
            }
            prop_assert_eq!(covered, len);
        }
    }

    /// ECMP hashing is always in bounds and deterministic.
    #[test]
    fn ecmp_bounds(flow in any::<u64>(), stage in any::<u64>(), n in 1usize..64) {
        let a = ecmp_hash(flow, stage, n);
        prop_assert!(a < n);
        prop_assert_eq!(a, ecmp_hash(flow, stage, n));
    }

    /// Histogram percentiles are monotone and bounded by min/max; the mean
    /// is exact.
    #[test]
    fn histogram_properties(values in proptest::collection::vec(0u64..1_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        let exact_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6);
        let mut last = 0;
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentiles monotone");
            prop_assert!(v >= h.min() && v <= h.max());
            last = v;
        }
    }

    /// Bounded-window ack arithmetic survives arbitrary (even hostile) ack
    /// No ack regression: under any interleaving of sends and (valid or
    /// duplicate) acks, the sequences reported acked by `on_ack` come out
    /// exactly once, in strictly increasing order — the cumulative edge
    /// never steps backward and never re-announces a sequence.
    #[test]
    fn tx_window_no_ack_regression(
        depth in 2u32..64,
        acks in proptest::collection::vec((any::<u32>(), 0u32..8), 1..200),
    ) {
        let mut tx = TxWindow::new(depth);
        let mut next_expected_acked: u64 = 0;
        let mut issued: u64 = 0;
        for (raw_ack, sends) in acks {
            for _ in 0..sends {
                if tx.can_send() {
                    tx.next_seq();
                    issued += 1;
                }
            }
            // Mix hostile raw acks with the honest edge so progress happens.
            let ack = if raw_ack % 3 == 0 { raw_ack } else { issued as u32 };
            for seq in tx.on_ack(ack) {
                prop_assert_eq!(
                    seq,
                    next_expected_acked as u32,
                    "acked sequences must be consecutive, no regression/repeat"
                );
                next_expected_acked += 1;
            }
            prop_assert!(next_expected_acked <= issued, "never acks the unsent");
        }
    }

    /// No sequence reuse: `next_seq` never hands out a number that is
    /// still in flight — a slot is recycled only after the cumulative ack
    /// has covered its previous occupant.
    #[test]
    fn tx_window_no_seq_reuse(
        depth in 2u32..32,
        steps in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut tx = TxWindow::new(depth);
        let mut outstanding = std::collections::HashSet::new();
        for send in steps {
            if send {
                if tx.can_send() {
                    let s = tx.next_seq();
                    prop_assert!(outstanding.insert(s), "sequence {} reused while in flight", s);
                }
            } else if let Some(oldest) = tx.oldest_unacked() {
                for seq in tx.on_ack(oldest.wrapping_add(1)) {
                    prop_assert!(outstanding.remove(&seq), "acked a seq never sent");
                }
            }
            prop_assert!(outstanding.len() < depth as usize, "window bound");
        }
    }

    /// values without over-advancing.
    #[test]
    fn tx_window_hostile_acks(depth in 2u32..64, acks in proptest::collection::vec(any::<u32>(), 1..100)) {
        let mut tx = TxWindow::new(depth);
        let mut sent = 0u64;
        let mut acked = 0u64;
        for ack in acks {
            while tx.can_send() {
                tx.next_seq();
                sent += 1;
            }
            acked += tx.on_ack(ack).count() as u64;
            prop_assert!(acked <= sent, "never acks the unsent");
            prop_assert!(tx.in_flight() < depth);
        }
    }
}

/// Full-stack liveness under arbitrary (bounded) fault plans: for any
/// generated mix of drop, duplicate and reorder windows that stays below
/// the go-back-N retry budget, every accepted request eventually completes
/// or its channel closes with a typed reason — no silent loss, no hang.
#[cfg(feature = "faults")]
mod fault_plan_liveness {
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    use proptest::prelude::*;
    use xrdma_core::channel::CloseReason;
    use xrdma_core::{XrdmaChannel, XrdmaConfig, XrdmaContext};
    use xrdma_fabric::{Fabric, FabricConfig, NodeId};
    use xrdma_faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTarget};
    use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
    use xrdma_sim::{Dur, SimRng, World};

    const EDGES: [&str; 4] = ["host0->tor0", "host1->tor0", "tor0->host0", "tor0->host1"];

    /// (kind selector, at ms, dur ms, probability %, target selector).
    /// Probabilities cap at 30% and windows at 20 ms — far below the
    /// default retry budget (64 ms timeout × 7 retries), so the protocol
    /// is *supposed* to win every time.
    fn spec_strategy() -> impl Strategy<Value = (u8, u64, u64, u32, u8)> {
        (0u8..3, 18u64..40, 2u64..20, 1u32..30, 0u8..4)
    }

    fn build_spec(sel: (u8, u64, u64, u32, u8)) -> FaultSpec {
        let (kind_sel, at_ms, dur_ms, prob_pct, tgt_sel) = sel;
        let prob = prob_pct as f64 / 100.0;
        let (target, kind) = match kind_sel {
            // Drops live on fabric edges.
            0 => (
                FaultTarget::Edge(EDGES[tgt_sel as usize].to_string()),
                FaultKind::Drop { prob },
            ),
            // Duplicates and reorders live on the receiving RNIC.
            1 => (
                FaultTarget::Node(tgt_sel as u32 % 2),
                FaultKind::Duplicate { prob },
            ),
            _ => (
                FaultTarget::Node(tgt_sel as u32 % 2),
                FaultKind::Reorder {
                    prob,
                    delay_ns: 2_000_000,
                },
            ),
        };
        FaultSpec {
            at_ns: at_ms * 1_000_000,
            dur_ns: Some(dur_ms * 1_000_000),
            target,
            kind,
        }
    }

    proptest! {
        // Each case is a full-stack simulation (case count comes from the
        // vendored shim's PROPTEST_CASES, default 256).
        #[test]
        fn no_silent_loss_no_hang(
            seed in any::<u64>(),
            sels in proptest::collection::vec(spec_strategy(), 1..4),
        ) {
            let mut plan = FaultPlan::new();
            for sel in sels {
                plan = plan.with(build_spec(sel));
            }
            let world = World::new();
            let rng = SimRng::new(seed);
            let _guard = FaultInjector::install(&world, plan, rng.fork("faults"));
            let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
            let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
            let server = XrdmaContext::on_new_node(
                &fabric, &cm, NodeId(0), RnicConfig::default(), XrdmaConfig::default(), &rng,
            );
            server.listen(7, |ch| {
                ch.set_on_request(|c, _m, t| {
                    c.respond_size(t, 64).ok();
                });
            });
            let client = XrdmaContext::on_new_node(
                &fabric, &cm, NodeId(1), RnicConfig::default(), XrdmaConfig::default(), &rng,
            );
            let slot: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
            let s2 = slot.clone();
            client.connect(NodeId(0), 7, move |r| *s2.borrow_mut() = Some(r.unwrap()));
            world.run_for(Dur::millis(20));
            let ch = slot.borrow().clone().expect("established before faults open");

            let reason: Rc<Cell<Option<CloseReason>>> = Rc::new(Cell::new(None));
            let r2 = reason.clone();
            ch.set_on_close(move |r| r2.set(Some(r)));
            let completed = Rc::new(Cell::new(0u32));
            let errored = Rc::new(Cell::new(0u32));
            let mut accepted = 0u32;
            for _ in 0..16 {
                let (c2, e2) = (completed.clone(), errored.clone());
                if ch
                    .send_request_size(1024, move |_, msg| {
                        if msg.is_error() {
                            e2.set(e2.get() + 1);
                        } else {
                            c2.set(c2.get() + 1);
                        }
                    })
                    .is_ok()
                {
                    accepted += 1;
                }
            }
            // The retry budget tops out around 64 ms × 7; a second of sim
            // time is quiescence for any plan this strategy can emit.
            world.run_for(Dur::secs(1));
            prop_assert_eq!(
                completed.get() + errored.get(),
                accepted,
                "every accepted request resolved (no silent loss, no hang)"
            );
            if errored.get() > 0 {
                prop_assert!(ch.is_closed(), "error replies only come from teardown");
                prop_assert!(
                    reason.get().is_some(),
                    "a torn-down channel reports a typed close reason"
                );
            } else {
                prop_assert_eq!(completed.get(), accepted);
            }
        }
    }
}

mod more_invariants {
    use proptest::prelude::*;
    use xrdma_apps::workload::{LoadSchedule, Phase};
    use xrdma_rnic::dcqcn::{DcqcnConfig, DcqcnRp};
    use xrdma_sim::{Dur, Time};

    proptest! {
        /// DCQCN's reaction point stays within physical bounds under any
        /// interleaving of CNPs, byte progress and timer ticks.
        #[test]
        fn dcqcn_bounds(
            events in proptest::collection::vec((0u8..3, 1u64..1000), 1..400),
        ) {
            let cfg = DcqcnConfig::default();
            let mut rp = DcqcnRp::new(cfg);
            let mut t = Time::ZERO;
            for (kind, step) in events {
                t += Dur::micros(step);
                match kind {
                    0 => rp.on_cnp(t),
                    1 => rp.on_bytes_sent(t, step * 4096),
                    _ => rp.on_timer(t),
                }
                prop_assert!(rp.rate_gbps() >= cfg.min_rate_gbps - 1e-9);
                prop_assert!(rp.rate_gbps() <= cfg.line_rate_gbps + 1e-9);
                prop_assert!((0.0..=1.0).contains(&rp.alpha()));
            }
        }

        /// A cut then sustained quiet always recovers to (near) line rate.
        #[test]
        fn dcqcn_always_recovers(cnps in 1u32..20) {
            let cfg = DcqcnConfig::default();
            let mut rp = DcqcnRp::new(cfg);
            let mut t = Time::ZERO;
            for _ in 0..cnps {
                t += Dur::micros(55);
                rp.on_cnp(t);
            }
            for _ in 0..2000 {
                t += Dur::micros(55);
                rp.on_timer(t);
            }
            prop_assert!(
                rp.rate_gbps() > cfg.line_rate_gbps * 0.95,
                "recovered to {}",
                rp.rate_gbps()
            );
        }

        /// Load schedules are total functions: the multiplier is always a
        /// configured phase multiplier, and interval scaling is inverse.
        #[test]
        fn load_schedule_total(
            phases in proptest::collection::vec((1u64..5000, 1u32..50), 1..6),
            probes in proptest::collection::vec(any::<u64>(), 1..50),
        ) {
            let phase_list: Vec<Phase> = phases
                .iter()
                .map(|&(ms, mx)| Phase {
                    duration: Dur::millis(ms),
                    multiplier: mx as f64 / 10.0,
                })
                .collect();
            let allowed: Vec<f64> = phase_list.iter().map(|p| p.multiplier).collect();
            let s = LoadSchedule::new(phase_list);
            for p in probes {
                let m = s.multiplier_at(Time(p % (10 * s.cycle().as_nanos())));
                prop_assert!(allowed.iter().any(|&a| (a - m).abs() < 1e-12));
                let base = Dur::micros(100);
                let iv = s.interval_at(Time(p % s.cycle().as_nanos()), base);
                let expect = base.as_nanos() as f64 / m;
                prop_assert!((iv.as_nanos() as f64 - expect).abs() <= 1.0);
            }
        }
    }
}
