//! Virtual time primitives.
//!
//! The simulation clock counts nanoseconds from world creation. [`Time`] is
//! an absolute instant, [`Dur`] a span; both are thin `u64` wrappers so they
//! are free to copy and compare on the event-heap hot path.

use core::fmt;

use core::ops::{Add, AddAssign, Div, Mul, Sub};
use serde::Serialize;

/// An absolute instant on the virtual clock, in nanoseconds since the world
/// was created.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
pub struct Dur(pub u64);

impl Time {
    /// The world-creation instant.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never" for timers.
    pub const MAX: Time = Time(u64::MAX);

    /// Nanoseconds since world creation.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since world creation (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds since world creation (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never wraps past [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    /// A span of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// A span of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> Dur {
        Dur(n * 1_000)
    }

    /// A span of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> Dur {
        Dur(n * 1_000_000)
    }

    /// A span of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> Dur {
        Dur(n * 1_000_000_000)
    }

    /// A span of fractional seconds, rounded to the nearest nanosecond.
    #[inline]
    pub fn secs_f64(s: f64) -> Dur {
        debug_assert!(s >= 0.0, "negative duration");
        Dur((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// `self * num / den` with intermediate u128 precision — used for
    /// serialization-delay math (`bytes * ns_per_sec / bytes_per_sec`).
    #[inline]
    pub fn mul_div(self, num: u64, den: u64) -> Dur {
        debug_assert!(den != 0);
        Dur((self.0 as u128 * num as u128 / den as u128) as u64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        Dur(self.0 - rhs.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Dur(self.0 - rhs.0)
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", fmt_ns(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Compute the serialization delay of `bytes` over a link of
/// `gbps` gigabits per second, as virtual time.
///
/// This is the one conversion every layer of the stack needs, so it lives
/// here: `delay = bytes * 8 / (gbps * 1e9) seconds`.
#[inline]
pub fn wire_time(bytes: u64, gbps: f64) -> Dur {
    debug_assert!(gbps > 0.0);
    Dur(((bytes as f64 * 8.0) / gbps).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Dur::micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::millis(2).as_nanos(), 2_000_000);
        assert_eq!(Dur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Dur::secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Dur::micros(5);
        assert_eq!(t.nanos(), 5_000);
        let t2 = t + Dur::nanos(10);
        assert_eq!((t2 - t).as_nanos(), 10);
        assert_eq!(t2.since(t).as_nanos(), 10);
        assert_eq!(t.since(t2).as_nanos(), 0, "since saturates");
        assert_eq!((Dur::nanos(6) / 2).as_nanos(), 3);
        assert_eq!((Dur::nanos(6) * 2).as_nanos(), 12);
    }

    #[test]
    fn wire_time_25gbps() {
        // 4 KiB at 25 Gb/s = 4096*8/25 ns = 1310.72 -> 1311 ns.
        assert_eq!(wire_time(4096, 25.0).as_nanos(), 1311);
        // 1 byte at 100 Gb/s rounds to 0.08 -> 0 ns.
        assert_eq!(wire_time(1, 100.0).as_nanos(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Dur::nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::secs(12)), "12.000s");
    }

    #[test]
    fn saturating() {
        assert_eq!(Time::MAX.saturating_add(Dur::secs(1)), Time::MAX);
        assert_eq!(Dur::nanos(1).saturating_sub(Dur::nanos(5)), Dur::ZERO);
    }

    #[test]
    fn mul_div_no_overflow() {
        // 10 seconds * large ratio would overflow u64 multiplication naively.
        let d = Dur::secs(10);
        assert_eq!(d.mul_div(1_000_000, 1_000_000), d);
        assert_eq!(d.mul_div(3, 2).as_nanos(), 15_000_000_000);
    }
}
