//! §IX "Eradicate PFC": the paper expects the industry to "discard PFC
//! and focus on the lossy network" — because PFC storms can deadlock whole
//! clusters. This experiment runs the same incast on (a) the lossless
//! PFC fabric, (b) a lossy fabric (PFC off, shallow switch buffers) where
//! RC retransmission carries the recovery burden, with and without
//! X-RDMA's flow control.
//!
//! Expected shape: on the lossy fabric, raw traffic loses goodput to
//! drop-triggered go-back-N; flow control keeps queues shallow enough
//! that losses (and retransmits) mostly disappear — supporting the
//! paper's position that smarter end-host control can replace PFC.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use xrdma_bench::report::gbps;
use xrdma_bench::Report;
use xrdma_core::{XrdmaChannel, XrdmaConfig, XrdmaContext};
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
use xrdma_sim::{Dur, SimRng, World};

struct Outcome {
    goodput_gbps: f64,
    drops: u64,
    pauses: u64,
    retransmissions: u64,
}

fn run(pfc: bool, flow_control: bool, seed: u64) -> Outcome {
    let senders = 16u32;
    let world = World::new();
    let rng = SimRng::new(seed);
    let mut fcfg = FabricConfig::rack(senders + 1);
    fcfg.pfc.enabled = pfc;
    if !pfc {
        // A lossy switch: shallow per-queue buffer, ECN still on.
        fcfg.queue_limit_bytes = 512 * 1024;
    }
    let fabric = Fabric::new(world.clone(), fcfg, &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    let mut cfg = XrdmaConfig::default();
    cfg.flowctl.enabled = flow_control;
    cfg.flowctl.max_outstanding = 2;

    let sink = XrdmaContext::on_new_node(
        &fabric,
        &cm,
        NodeId(0),
        RnicConfig::default(),
        cfg.clone(),
        &rng,
    );
    let received = Rc::new(Cell::new(0u64));
    let r = received.clone();
    sink.listen(9, move |ch| {
        let r2 = r.clone();
        ch.set_on_request(move |c, msg, t| {
            r2.set(r2.get() + msg.len);
            c.respond_size(t, 32).ok();
        });
    });
    let mut all = Vec::new();
    for i in 1..=senders {
        let c = XrdmaContext::on_new_node(
            &fabric,
            &cm,
            NodeId(i),
            RnicConfig::default(),
            cfg.clone(),
            &rng,
        );
        let slot: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
        let s2 = slot.clone();
        c.connect(NodeId(0), 9, move |r| {
            *s2.borrow_mut() = Some(r.expect("connect"))
        });
        all.push((c, slot));
    }
    world.run_for(Dur::millis(100));
    fn pump(ch: &Rc<XrdmaChannel>, size: u64) {
        let c2 = ch.clone();
        ch.send_request_size(size, move |_, resp| {
            if !resp.is_error() {
                pump(&c2, size);
            }
        })
        .ok();
    }
    for (_, slot) in &all {
        let ch = slot.borrow().clone().expect("connected");
        for _ in 0..4 {
            pump(&ch, 256 * 1024);
        }
    }
    let span = Dur::millis(400);
    let t0 = world.now();
    world.run_for(span);
    let elapsed = world.now().since(t0).as_secs_f64();
    let c = fabric.stats().snapshot();
    Outcome {
        goodput_gbps: received.get() as f64 * 8.0 / elapsed / 1e9,
        drops: c.drops,
        pauses: c.pause_frames,
        retransmissions: all
            .iter()
            .map(|(c, _)| c.rnic().stats().retransmissions)
            .sum(),
    }
}

fn main() {
    let lossless = run(true, true, 4);
    let lossy_raw = run(false, false, 4);
    let lossy_fc = run(false, true, 4);

    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8}",
        "config", "goodput", "drops", "pauses", "retx"
    );
    for (name, o) in [
        ("lossless + fc", &lossless),
        ("lossy, raw", &lossy_raw),
        ("lossy + fc", &lossy_fc),
    ] {
        println!(
            "{:<22} {:>7.2} Gb {:>8} {:>8} {:>8}",
            name, o.goodput_gbps, o.drops, o.pauses, o.retransmissions
        );
    }

    let mut rep = Report::new(
        "exp_lossy",
        "§IX future work: dropping PFC and running lossy with end-host control",
    );
    rep.row(
        "lossy fabric without end-host control",
        "drops + go-back-N hurt goodput",
        format!(
            "{} / {} drops / {} retx",
            gbps(lossy_raw.goodput_gbps),
            lossy_raw.drops,
            lossy_raw.retransmissions
        ),
        lossy_raw.drops > 0 && lossy_raw.goodput_gbps < lossless.goodput_gbps,
    );
    rep.row(
        "flow control removes (nearly) all loss",
        "smarter end-host control can replace PFC",
        format!(
            "{} drops with fc vs {} raw",
            lossy_fc.drops, lossy_raw.drops
        ),
        lossy_fc.drops < lossy_raw.drops / 10,
    );
    rep.row(
        "lossy+fc goodput ≈ lossless+fc",
        "PFC becomes unnecessary",
        format!(
            "{} vs {}",
            gbps(lossy_fc.goodput_gbps),
            gbps(lossless.goodput_gbps)
        ),
        lossy_fc.goodput_gbps > lossless.goodput_gbps * 0.9,
    );
    rep.row(
        "no pause frames on the lossy fabric",
        "PFC storms structurally impossible",
        format!("{}", lossy_fc.pauses),
        lossy_fc.pauses == 0,
    );
    rep.finish();
}
