/* Instant::now(), SystemTime, thread_rng(), emit_raw(),
   /* nested: xrdma_faults::port_drop, static mut GLOBAL, vec![0; 9] */
   still inside the outer comment: payload.clone().to_vec() */
fn after_comment() {}
