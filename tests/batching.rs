//! Differential test for the shared-CQ / doorbell-coalescing fast path:
//! batching is a *pure performance transform*. Running the same fixed
//! workload with coalescing + deep CQ drains versus the fully serialized
//! configuration (`doorbell_coalesce = false`, `cq_poll_batch = 1`) must
//! produce identical message-level outcomes — payload bytes, per-channel
//! delivery order, final Seq-Ack state and RPC completion counts. Only
//! cross-channel interleaving and cycle accounting may differ.
//!
//! The same obligation extends to the adaptive progress engine
//! (`PollMode::Adaptive`): busy-poll/event-mode switching may reorder
//! *when* the CPU looks at the CQ, never *what* the application observes.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use xrdma_core::proto::MsgKind;
use xrdma_core::{PollMode, XrdmaChannel, XrdmaConfig, XrdmaContext};
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
use xrdma_sim::{Dur, SimRng, World};

const CLIENTS: u32 = 4;
const EAGER_RPCS: usize = 8;
const LARGE_RPCS: usize = 2;
const ONEWAYS: usize = 4;
/// Above `small_msg_size` (4 KiB default) — takes the rendezvous path in
/// both directions (request out, echoed response back).
const LARGE_LEN: usize = 48 * 1024;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic patterned payload so echo mismatches are detectable.
fn payload(client: u32, slot: usize, len: usize) -> Bytes {
    let seed = (client as usize).wrapping_mul(31).wrapping_add(slot * 7) as u8;
    Bytes::from(
        (0..len)
            .map(|i| seed.wrapping_add(i as u8))
            .collect::<Vec<u8>>(),
    )
}

/// Everything message-level about one run, keyed by client node so only
/// *per-channel* order is compared (cross-channel interleaving is allowed
/// to shift under batching).
#[derive(Debug, PartialEq)]
struct Outcome {
    /// Server-side deliveries per client: (kind, len, fnv1a(body)) in order.
    server_rx: BTreeMap<u32, Vec<(&'static str, u64, u64)>>,
    /// Client-side responses per client: (len, fnv1a(body)) in order.
    client_rx: BTreeMap<u32, Vec<(u64, u64)>>,
    /// Final (in_flight, wta, rta, unsent_acks) for (client end, server end).
    seqack: BTreeMap<u32, ((u32, u32, u32, u32), (u32, u32, u32, u32))>,
    rpcs_completed: u64,
}

/// Mode-dependent evidence that the configuration under test actually took
/// the code path it claims to — kept out of `Outcome` because it is
/// *allowed* to differ between modes.
struct Evidence {
    doorbells: u64,
    doorbell_wrs: u64,
    max_cqe_batch: u64,
    poll_mode_switches: u64,
    /// Byte-exact digest for same-seed rerun comparison.
    digest: String,
}

fn run(cfg: &XrdmaConfig, seed: u64) -> (Outcome, Evidence) {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), FabricConfig::rack(CLIENTS + 1), &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    let mk = |node: u32| {
        XrdmaContext::on_new_node(
            &fabric,
            &cm,
            NodeId(node),
            RnicConfig::default(),
            cfg.clone(),
            &rng,
        )
    };

    type RxLog = Rc<RefCell<BTreeMap<u32, Vec<(&'static str, u64, u64)>>>>;
    let server_rx: RxLog = Rc::new(RefCell::new(BTreeMap::new()));
    let server = mk(0);
    {
        let log = server_rx.clone();
        server.listen(9, move |ch| {
            let log = log.clone();
            ch.set_on_request(move |ch, msg, token| {
                let body = msg.body();
                log.borrow_mut().entry(ch.peer.0).or_default().push((
                    match msg.kind {
                        MsgKind::Request => "req",
                        MsgKind::OneWay => "oneway",
                        _ => "other",
                    },
                    msg.len,
                    fnv1a(&body),
                ));
                if msg.kind == MsgKind::Request {
                    // Echo the payload back; large echoes exercise the
                    // rendezvous (RDMA-Read) response path.
                    ch.respond(token, body).expect("respond");
                }
            });
        });
    }

    let mut clients: Vec<(Rc<XrdmaContext>, Rc<RefCell<Option<Rc<XrdmaChannel>>>>)> = Vec::new();
    for i in 1..=CLIENTS {
        let c = mk(i);
        let slot: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
        let s2 = slot.clone();
        c.connect(NodeId(0), 9, move |r| {
            *s2.borrow_mut() = Some(r.expect("connect"));
        });
        clients.push((c, slot));
    }
    world.run_for(Dur::millis(30));

    // Fixed mixed workload, all posted in one instant per client: small
    // eager RPCs, large rendezvous RPCs, and one-way messages interleaved.
    let client_rx: Rc<RefCell<BTreeMap<u32, Vec<(u64, u64)>>>> =
        Rc::new(RefCell::new(BTreeMap::new()));
    let completed = Rc::new(Cell::new(0u64));
    for (idx, (_, slot)) in clients.iter().enumerate() {
        let node = idx as u32 + 1;
        let ch = slot.borrow().clone().expect("channel up");
        let mut slot_no = 0usize;
        let mut rpc = |len: usize| {
            let body = payload(node, slot_no, len);
            let rx = client_rx.clone();
            let done = completed.clone();
            ch.send_request(body, move |_, rsp| {
                let b = rsp.body();
                rx.borrow_mut()
                    .entry(node)
                    .or_default()
                    .push((rsp.len, fnv1a(&b)));
                done.set(done.get() + 1);
            })
            .expect("send accepted");
            slot_no += 1;
        };
        for j in 0..EAGER_RPCS {
            rpc(64 + 32 * j);
        }
        for _ in 0..LARGE_RPCS {
            rpc(LARGE_LEN);
        }
        for j in 0..ONEWAYS {
            let body = payload(node, 100 + j, 256 + 64 * j);
            ch.send_oneway(body).expect("oneway accepted");
        }
    }
    world.run_for(Dur::millis(400));
    assert_eq!(
        completed.get(),
        CLIENTS as u64 * (EAGER_RPCS + LARGE_RPCS) as u64,
        "workload quiesces"
    );

    let mut seqack = BTreeMap::new();
    let mut doorbells = 0;
    let mut doorbell_wrs = 0;
    let mut max_cqe_batch = 0;
    let mut poll_mode_switches = 0;
    let mut digest = String::new();
    for ctx in std::iter::once(&server).chain(clients.iter().map(|(c, _)| c)) {
        let cs = ctx.stats();
        doorbells += cs.doorbells_rung;
        doorbell_wrs += cs.doorbell_wrs;
        poll_mode_switches += cs.poll_mode_switches;
        digest.push_str(&serde_json::to_string(&cs).expect("json"));
        digest.push('\n');
        for ch in ctx.channels() {
            if let Some(h) = ch.cqe_batch_summary() {
                max_cqe_batch = max_cqe_batch.max(h.max);
            }
        }
    }
    for (idx, (_, slot)) in clients.iter().enumerate() {
        let node = idx as u32 + 1;
        let ch = slot.borrow().clone().expect("channel");
        let server_end = server
            .channels()
            .into_iter()
            .find(|c| c.peer.0 == node)
            .expect("server end");
        seqack.insert(node, (ch.seqack_state(), server_end.seqack_state()));
    }
    let outcome = Outcome {
        server_rx: server_rx.borrow().clone(),
        client_rx: client_rx.borrow().clone(),
        seqack,
        rpcs_completed: completed.get(),
    };
    digest.push_str(&format!(
        "{outcome:?}\ntime={} events={}",
        world.now().nanos(),
        world.events_executed()
    ));
    (
        outcome,
        Evidence {
            doorbells,
            doorbell_wrs,
            max_cqe_batch,
            poll_mode_switches,
            digest,
        },
    )
}

fn batch1_cfg() -> XrdmaConfig {
    XrdmaConfig {
        doorbell_coalesce: false,
        cq_poll_batch: 1,
        ..Default::default()
    }
}

fn adaptive_cfg() -> XrdmaConfig {
    XrdmaConfig {
        poll_mode: PollMode::Adaptive,
        ..Default::default()
    }
}

/// The headline property: batching on (defaults) vs fully serialized
/// (batch = 1, no coalescing) — identical message-level outcomes.
#[test]
fn batching_is_a_pure_performance_transform() {
    let (batched, ev_on) = run(&XrdmaConfig::default(), 42);
    let (serial, ev_off) = run(&batch1_cfg(), 42);
    assert_eq!(batched, serial, "message-level outcomes must be identical");
    // Neither leg may be vacuous: the batched run really coalesced
    // doorbells and drained multi-CQE batches; the serial run did not.
    assert!(
        ev_on.doorbell_wrs > ev_on.doorbells,
        "coalescing happened: {} WRs over {} doorbells",
        ev_on.doorbell_wrs,
        ev_on.doorbells
    );
    assert!(
        ev_on.max_cqe_batch > 1,
        "shared CQ drained batches (max {})",
        ev_on.max_cqe_batch
    );
    assert!(
        ev_off.max_cqe_batch <= 1,
        "batch=1 leg must poll one CQE at a time (max {})",
        ev_off.max_cqe_batch
    );
}

/// The adaptive engine obeys the same contract versus the serialized
/// baseline, and it actually switched modes along the way.
#[test]
fn adaptive_engine_preserves_outcomes() {
    let (adaptive, ev) = run(&adaptive_cfg(), 42);
    let (serial, _) = run(&batch1_cfg(), 42);
    assert_eq!(adaptive, serial, "adaptive engine must not change outcomes");
    assert!(
        ev.poll_mode_switches > 0,
        "the engine really moved between busy-poll and event mode"
    );
}

/// Same seed, same config → byte-identical digest (serialized stats plus
/// the full outcome debug dump), for every mode. This is what lets the
/// batched fast path ride under the repo-wide determinism contract.
#[test]
fn same_seed_reruns_are_byte_identical() {
    for cfg in [XrdmaConfig::default(), batch1_cfg(), adaptive_cfg()] {
        let (_, a) = run(&cfg, 7);
        let (_, b) = run(&cfg, 7);
        assert_eq!(a.digest, b.digest, "rerun digest diverged");
    }
}
