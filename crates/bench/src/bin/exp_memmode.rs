//! §VII-F "Avoid to use continuous physical memory": compare the three
//! RDMA-memory page modes — non-continuous (anonymous 4 KiB pages),
//! physically continuous, and huge pages.
//!
//! Paper claim: "the non-continuous mode has comparable performance and
//! less fragmentations" — continuous memory is cache-friendly but risks
//! out-of-memory / reclaim stalls on long-running fragmented hosts.

use xrdma_baselines::pingpong_xrdma;
use xrdma_bench::Report;
use xrdma_core::XrdmaConfig;
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::{PageKind, Rnic, RnicConfig};
use xrdma_sim::{SimRng, World};

fn cfg(kind: PageKind) -> XrdmaConfig {
    let mut c = XrdmaConfig::default();
    c.ibqp_alloc_type = kind;
    c
}

fn main() {
    // Registration cost per mode (host-side, from the NIC cost model).
    let world = World::new();
    let rng = SimRng::new(1);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let nic = Rnic::new(&fabric, NodeId(0), RnicConfig::default(), rng.fork("n"));
    let mb4 = 4 * 1024 * 1024;
    // A long-running storage server: hundreds of MB already pinned; the
    // continuous hunt pays reclaim/compaction under that pressure.
    let pd = nic.alloc_pd();
    for _ in 0..128 {
        nic.reg_mr(
            &pd,
            mb4,
            xrdma_rnic::AccessFlags::FULL,
            PageKind::Anonymous,
            false,
            false,
        );
    }
    let reg_anon = nic.reg_mr_cost(mb4, PageKind::Anonymous).as_micros_f64();
    let reg_cont = nic.reg_mr_cost(mb4, PageKind::Continuous).as_micros_f64();
    let reg_huge = nic.reg_mr_cost(mb4, PageKind::Huge).as_micros_f64();

    // Data-path latency per mode (4 KiB ping-pong through the middleware).
    let lat = |kind: PageKind| pingpong_xrdma("memmode", cfg(kind), 4096, 150, 9).mean_us();
    let lat_anon = lat(PageKind::Anonymous);
    let lat_cont = lat(PageKind::Continuous);
    let lat_huge = lat(PageKind::Huge);

    println!(
        "{:<14} {:>14} {:>16}",
        "mode", "reg(4MB) µs", "4KB pingpong µs"
    );
    for (name, reg, l) in [
        ("anonymous", reg_anon, lat_anon),
        ("continuous", reg_cont, lat_cont),
        ("hugepage", reg_huge, lat_huge),
    ] {
        println!("{name:<14} {reg:>14.0} {l:>16.2}");
    }

    let spread = {
        let mx = lat_anon.max(lat_cont).max(lat_huge);
        let mn = lat_anon.min(lat_cont).min(lat_huge);
        mx / mn - 1.0
    };

    let mut rep = Report::new(
        "exp_memmode",
        "page modes: non-continuous vs continuous vs hugepage",
    );
    rep.row(
        "data-path latency spread across modes",
        "comparable performance",
        format!("{:.1}%", spread * 100.0),
        spread < 0.10,
    );
    rep.row(
        "continuous allocation cost on a fragmented host",
        "risky (reclaim / OOM pressure)",
        format!("{reg_cont:.0}µs vs {reg_anon:.0}µs anonymous (512MB pinned)"),
        reg_cont > reg_anon * 2.0,
    );
    rep.row(
        "hugepage translation entries",
        "fewest MPT/MTT entries",
        format!(
            "{} entries vs {} (4KB pages) per 4MB",
            mb4 / (2 * 1024 * 1024),
            mb4 / 4096
        ),
        true,
    );
    rep.row(
        "recommendation",
        "use non-continuous (default)",
        "PageKind::Anonymous is the default",
        matches!(XrdmaConfig::default().ibqp_alloc_type, PageKind::Anonymous),
    );
    rep.finish();
}
