//! XR-Ping (§VI-B): an RDMA-aware ping producing the full-mesh connection
//! matrix the centralized monitor displays — "ping all machines in the ToR
//! layer, then aggregate the results to the connection matrix".
//!
//! Unlike ICMP ping, probes travel the real middleware RPC path, so they
//! observe exactly what applications would (congestion, pauses, dead
//! peers).

use std::cell::RefCell;
use std::rc::Rc;

use xrdma_core::{XrdmaChannel, XrdmaContext};
use xrdma_fabric::NodeId;
use xrdma_sim::{Dur, World};

/// Result of probing one (src, dst) pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PingCell {
    /// Round-trip time of the probe.
    Ok(Dur),
    /// Connect failed or probe timed out.
    Unreachable,
    /// Not probed (diagonal / filtered).
    Skipped,
}

/// The full-mesh prober.
pub struct XrPing {
    world: Rc<World>,
    contexts: Vec<Rc<XrdmaContext>>,
    svc: u16,
    matrix: Rc<RefCell<Vec<Vec<PingCell>>>>,
}

impl XrPing {
    /// Build a prober over a set of contexts (one per machine). Every
    /// context gets a listener at `svc` that echoes probes.
    pub fn new(world: Rc<World>, contexts: Vec<Rc<XrdmaContext>>, svc: u16) -> XrPing {
        let n = contexts.len();
        for ctx in &contexts {
            ctx.listen(svc, |ch: Rc<XrdmaChannel>| {
                ch.set_on_request(|ch, _msg, token| {
                    ch.respond_size(token, 8).ok();
                });
            });
        }
        XrPing {
            world,
            contexts,
            svc,
            matrix: Rc::new(RefCell::new(vec![vec![PingCell::Skipped; n]; n])),
        }
    }

    /// Launch all n×(n−1) probes. Results land in the matrix as the world
    /// runs; call [`XrPing::matrix`] afterwards.
    pub fn probe_all(&self) {
        let n = self.contexts.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                self.probe_one(i, j);
            }
        }
    }

    fn probe_one(&self, i: usize, j: usize) {
        let src = &self.contexts[i];
        let dst_node = NodeId(self.contexts[j].node().0);
        let world = self.world.clone();
        let matrix = self.matrix.clone();
        let t0 = world.now();
        // Default to unreachable; overwritten on success.
        matrix.borrow_mut()[i][j] = PingCell::Unreachable;
        let m2 = matrix.clone();
        src.connect(dst_node, self.svc, move |r| {
            let Ok(ch) = r else { return };
            let w2 = world.clone();
            let t_req = world.now();
            let _ = t0;
            ch.send_request_size(8, move |ch2, _resp| {
                let rtt = w2.now().since(t_req);
                m2.borrow_mut()[i][j] = PingCell::Ok(rtt);
                ch2.close();
            })
            .ok();
        });
    }

    /// The probed matrix (row = source index, column = destination).
    pub fn matrix(&self) -> Vec<Vec<PingCell>> {
        self.matrix.borrow().clone()
    }

    /// Count of unreachable pairs — the at-a-glance broken-network index.
    pub fn unreachable_pairs(&self) -> usize {
        self.matrix
            .borrow()
            .iter()
            .flatten()
            .filter(|c| **c == PingCell::Unreachable)
            .count()
    }

    /// Render as a compact text matrix (µs or `----`).
    pub fn render(&self) -> String {
        let m = self.matrix.borrow();
        let mut out = String::from("xr-ping connection matrix (RTT µs)\n      ");
        for j in 0..m.len() {
            out.push_str(&format!("n{:<7}", self.contexts[j].node().0));
        }
        out.push('\n');
        for (i, row) in m.iter().enumerate() {
            out.push_str(&format!("n{:<5}", self.contexts[i].node().0));
            for cell in row {
                match cell {
                    PingCell::Ok(d) => out.push_str(&format!("{:<8.1}", d.as_micros_f64())),
                    PingCell::Unreachable => out.push_str("----    "),
                    PingCell::Skipped => out.push_str(".       "),
                }
            }
            out.push('\n');
        }
        out
    }
}
