//! §III Issue 2: congestion jitter magnitude. "Serious jitter can incur
//! 70% throughput degradation (from 3.4 GBps to 1.1 GBps) and 2×–15×
//! higher latency" — large messages block the RNIC and DCQCN reacts too
//! late under incast.
//!
//! We reproduce the phenomenon (and that X-RDMA's flow control removes
//! it): throughput time series of an incast with huge unfragmented
//! messages, against the same load with flow control.

use rayon::prelude::*;
use xrdma_bench::scenarios::run_incast;
use xrdma_bench::Report;
use xrdma_core::XrdmaConfig;
use xrdma_sim::Dur;

fn main() {
    let senders = 24;
    let span = Dur::millis(800);
    // Mixed small+large traffic suffers when the large transfers are not
    // fragmented: huge messages monopolize the pipe in bursts.
    let mut raw = XrdmaConfig::default();
    raw.flowctl.enabled = false;
    let mut fc = XrdmaConfig::default();
    fc.flowctl.enabled = true;
    fc.flowctl.max_outstanding = 2;

    let runs: Vec<(&str, XrdmaConfig, u64)> =
        vec![("raw-1MB", raw, 1024 * 1024), ("fc-1MB", fc, 1024 * 1024)];
    let outcomes: Vec<_> = runs
        .into_par_iter()
        .map(|(label, cfg, size)| (label, run_incast(cfg, senders, size, 3, span, 33)))
        .collect();
    let raw_o = &outcomes.iter().find(|(l, _)| *l == "raw-1MB").unwrap().1;
    let fc_o = &outcomes.iter().find(|(l, _)| *l == "fc-1MB").unwrap().1;

    // Jitter metric: per-100ms bandwidth variation (peak vs trough after
    // warm-up).
    let stats = |series: &[(f64, f64)]| -> (f64, f64, f64) {
        let vals: Vec<f64> = series
            .iter()
            .skip(2)
            .map(|&(_, v)| v * 8.0 / 0.1 / 1e9)
            .collect();
        let peak = vals.iter().cloned().fold(0.0f64, f64::max);
        let trough = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        (peak, trough, mean)
    };
    let (raw_peak, raw_trough, raw_mean) = stats(&raw_o.bw_series);
    let (_fc_peak, fc_trough, fc_mean) = stats(&fc_o.bw_series);

    println!(
        "raw:  peak {raw_peak:.1} trough {raw_trough:.1} mean {raw_mean:.1} Gbps  cnps={}",
        raw_o.cnps
    );
    println!(
        "fc:   trough {fc_trough:.1} mean {fc_mean:.1} Gbps  cnps={}",
        fc_o.cnps
    );

    let mut rep = Report::new(
        "exp_jitter",
        "congestion jitter from unfragmented large messages (§III issue 2)",
    );
    // Our DCQCN model converges to a steadily depressed rate rather than
    // oscillating hard, so we compare the congested throughput against the
    // healthy (flow-controlled) level — the same quantity the paper's
    // 3.4 GBps → 1.1 GBps compares.
    let degradation = 1.0 - raw_mean / fc_mean.max(1e-9);
    rep.row(
        "throughput degradation under congestion",
        "~70% (3.4 -> 1.1 GBps)",
        format!(
            "{:.0}% ({:.1} -> {:.1} Gbps; raw trough {:.1})",
            degradation * 100.0,
            fc_mean,
            raw_mean,
            raw_trough
        ),
        degradation > 0.25,
    );
    let _ = raw_peak;
    rep.row(
        "flow control smooths the trough",
        "jitter mitigated",
        format!("trough {fc_trough:.1} vs {raw_trough:.1} Gbps"),
        fc_trough > raw_trough,
    );
    rep.row(
        "mean bandwidth with flow control",
        "higher and stable",
        format!("{fc_mean:.1} vs {raw_mean:.1} Gbps"),
        fc_mean > raw_mean,
    );
    rep.series(
        "raw_bw_gbps",
        raw_o
            .bw_series
            .iter()
            .map(|&(t, v)| (t, v * 8.0 / 0.1 / 1e9))
            .collect(),
    );
    rep.series(
        "fc_bw_gbps",
        fc_o.bw_series
            .iter()
            .map(|&(t, v)| (t, v * 8.0 / 0.1 / 1e9))
            .collect(),
    );
    rep.finish();
}
