//! # xrdma-telemetry — cross-layer observability for the X-RDMA stack
//!
//! The paper's §VI argues X-RDMA's production value came as much from its
//! diagnosis ecosystem (xr-stat, xr-ping, tracing, ADM) as from the
//! protocol. This crate is that ecosystem's backbone in the reproduction:
//! a structured event bus every layer emits into, a sim-time metrics
//! registry, exporters (JSONL, Chrome `trace_event`, CSV), and a bounded
//! flight recorder dumped on failure.
//!
//! ## Overhead contract
//!
//! Instrumented crates emit through [`tele!`], which expands to **nothing**
//! unless the *invoking* crate's `telemetry` feature is enabled — the
//! telemetry-off build carries zero extra instructions on hot paths, the
//! same contract `invariant!` makes for checkers. With the feature on but
//! no hub installed, the cost is one thread-local flag check; the event
//! payload is only constructed when a [`TelemetryHub`] is live on the
//! current thread. The `raw-telemetry-emit` lint rule keeps stack code
//! honest by rejecting direct `emit_raw` calls.

pub mod event;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod recorder;

pub use event::{Event, EventKind};
pub use hub::{HubConfig, HubGuard, TelemetryHub};
pub use metrics::MetricsRegistry;
pub use recorder::FlightRecorder;

/// Emit a telemetry event, for free when telemetry is off.
///
/// The operand is an [`EventKind`] variant body:
///
/// ```ignore
/// tele!(PktDrop { port: self.label.clone(), prio, bytes });
/// ```
///
/// Expansion is gated on the **invoking** crate's `telemetry` feature
/// (each instrumented crate declares one, forwarded down its dependency
/// chain, mirroring `debug_invariants`). Payload expressions are evaluated
/// only when a hub is installed, so `.clone()`s in operands are safe on
/// hot paths.
#[macro_export]
macro_rules! tele {
    ($($ev:tt)+) => {{
        #[cfg(feature = "telemetry")]
        {
            if $crate::hub::active() {
                $crate::hub::emit_raw($crate::event::EventKind::$($ev)+);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::event::EventKind;
    use crate::hub::{self, HubConfig, TelemetryHub};
    use xrdma_sim::{Dur, World};

    /// With this crate's own `telemetry` feature off, `tele!` must expand
    /// to nothing: even with a hub installed, no event is recorded. This is
    /// the compile-side half of the zero-overhead contract (the lint rule
    /// is the source-side half).
    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn tele_is_a_no_op_without_the_feature() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        tele!(SeqDuplicate { seq: 1 });
        tele!(PktDrop {
            port: unreachable!("payload must not be evaluated"),
            prio: 0,
            bytes: 0,
        });
        assert_eq!(guard.event_count(), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn tele_emits_with_the_feature_on() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        world.run_for(Dur::micros(5));
        tele!(SeqDuplicate { seq: 42 });
        let evs = guard.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t.nanos(), 5_000);
        assert!(matches!(evs[0].kind, EventKind::SeqDuplicate { seq: 42 }));
    }

    #[test]
    fn no_hub_means_no_payload_construction() {
        // Guard dropped: active() is false, so even under the feature the
        // payload expression must not run.
        assert!(!hub::active());
        tele!(PktDrop {
            port: unreachable!("no hub installed"),
            prio: 0,
            bytes: 0,
        });
    }

    #[test]
    fn packet_level_events_skip_the_log_but_reach_the_ring() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        guard.record(EventKind::PktEnqueue {
            port: "h0".into(),
            prio: 0,
            bytes: 1024,
            queued_bytes: 1024,
        });
        guard.record(EventKind::SeqDuplicate { seq: 9 });
        assert_eq!(guard.event_count(), 1, "enqueue filtered from the log");
        guard.dump_flight_recorder("test");
        assert_eq!(guard.last_dump().unwrap().len(), 2, "ring saw both");
    }

    #[test]
    fn install_is_scoped_to_the_guard() {
        let world = World::new();
        assert!(!hub::active());
        {
            let _g = TelemetryHub::install(&world, HubConfig::default());
            assert!(hub::active());
        }
        assert!(!hub::active());
    }

    /// An induced `invariant!` failure must dump the flight recorder:
    /// the observer fires before the panic propagates.
    #[test]
    fn invariant_failure_dumps_flight_recorder() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        for i in 0..10 {
            guard.record(EventKind::SeqDuplicate { seq: i });
        }
        let err = std::panic::catch_unwind(|| {
            xrdma_sim::invariant!(false, "induced flight-recorder test failure");
        })
        .expect_err("invariant fires under cfg(test)");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("induced flight-recorder"), "msg: {msg}");
        let dump = guard.last_dump().expect("recorder dumped");
        // 10 seq-dups plus the invariant event itself.
        assert_eq!(dump.len(), 11);
        assert!(matches!(
            dump.last().unwrap().kind,
            EventKind::InvariantFired { .. }
        ));
    }

    #[test]
    fn abnormal_close_dumps_flight_recorder() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        guard.record(EventKind::SeqDuplicate { seq: 1 });
        guard.record(EventKind::ChannelClose {
            node: 3,
            peer: 4,
            qpn: 8,
            reason: "local",
        });
        assert!(guard.last_dump().is_none(), "clean close: no dump");
        guard.record(EventKind::ChannelClose {
            node: 3,
            peer: 4,
            qpn: 8,
            reason: "peer-dead",
        });
        let dump = guard.last_dump().expect("peer-dead close dumps");
        assert_eq!(dump.len(), 3);
    }

    #[test]
    fn sampler_ticks_on_virtual_time() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        guard.metrics().gauge_set("depth", 5.0);
        guard.hub().start_sampler(Dur::millis(1), |h| {
            h.metrics().sample_gauges(h.now().nanos())
        });
        world.run_for(Dur::millis(10));
        let rows = guard.metrics().series_rows("depth");
        // Ticks at 1..=10 ms land in buckets 1..=10; bucket 0 is empty.
        assert_eq!(rows.len(), 11);
        assert_eq!(rows.iter().filter(|r| r.1 == 5.0).count(), 10);
        // Dropping the guard stops the sampler with it.
        drop(guard);
        world.run_for(Dur::millis(10));
    }
}
