//! # xrdma-telemetry — cross-layer observability for the X-RDMA stack
//!
//! The paper's §VI argues X-RDMA's production value came as much from its
//! diagnosis ecosystem (xr-stat, xr-ping, tracing, ADM) as from the
//! protocol. This crate is that ecosystem's backbone in the reproduction:
//! a structured event bus every layer emits into, a sim-time metrics
//! registry, exporters (JSONL, Chrome `trace_event`, CSV), and a bounded
//! flight recorder dumped on failure.
//!
//! ## Overhead contract
//!
//! Instrumented crates emit through [`tele!`], which expands to **nothing**
//! unless the *invoking* crate's `telemetry` feature is enabled — the
//! telemetry-off build carries zero extra instructions on hot paths, the
//! same contract `invariant!` makes for checkers. With the feature on but
//! no hub installed, the cost is one thread-local flag check; the event
//! payload is only constructed when a [`TelemetryHub`] is live on the
//! current thread. The `raw-telemetry-emit` lint rule keeps stack code
//! honest by rejecting direct `emit_raw` calls.

pub mod event;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use event::{Event, EventKind};
pub use hub::{HubConfig, HubGuard, TelemetryHub};
pub use metrics::MetricsRegistry;
pub use recorder::FlightRecorder;
pub use span::{SpanNode, SpanToken, Stage, StageStat};

/// Emit a telemetry event, for free when telemetry is off.
///
/// The operand is an [`EventKind`] variant body:
///
/// ```ignore
/// tele!(PktDrop { port: self.label.clone(), prio, bytes });
/// ```
///
/// Expansion is gated on the **invoking** crate's `telemetry` feature
/// (each instrumented crate declares one, forwarded down its dependency
/// chain, mirroring `debug_invariants`). Payload expressions are evaluated
/// only when a hub is installed, so `.clone()`s in operands are safe on
/// hot paths.
#[macro_export]
macro_rules! tele {
    ($($ev:tt)+) => {{
        #[cfg(feature = "telemetry")]
        {
            if $crate::hub::active() {
                $crate::hub::emit_raw($crate::event::EventKind::$($ev)+);
            }
        }
    }};
}

/// Open a causal span for one operation (DESIGN.md §8), yielding its
/// [`span::SpanToken`]. Expands to [`span::SpanToken::NONE`] — and
/// evaluates no operands — unless the invoking crate's `telemetry` feature
/// is on *and* a hub is installed, mirroring [`tele!`].
#[macro_export]
macro_rules! span_open {
    ($node:expr, $qpn:expr, $seq:expr, $bytes:expr) => {{
        #[cfg(feature = "telemetry")]
        {
            if $crate::hub::active() {
                $crate::hub::span_open_raw($node, $qpn, $seq, $bytes)
            } else {
                $crate::span::SpanToken::NONE
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            $crate::span::SpanToken::NONE
        }
    }};
}

/// Close the open stage of `tok`'s span at the current virtual time and
/// enter `Stage::$stage`. Free when telemetry is off; ignored for
/// `SpanToken::NONE` and closed spans.
///
/// The feature-off arm captures the operands in a closure that is never
/// called: nothing is evaluated, no code is generated, but bindings and
/// struct fields named in the operands still count as used.
#[macro_export]
macro_rules! span_mark {
    ($tok:expr, $stage:ident) => {{
        #[cfg(feature = "telemetry")]
        {
            if $crate::hub::active() {
                $crate::hub::span_mark_raw($tok, $crate::span::Stage::$stage);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = || $tok;
        }
    }};
}

/// Record one per-hop fabric transit on `tok`'s span: started at
/// `$started_ns`, ending now, labelled with the egress port.
#[macro_export]
macro_rules! span_hop {
    ($tok:expr, $label:expr, $started_ns:expr) => {{
        #[cfg(feature = "telemetry")]
        {
            if $crate::hub::active() {
                $crate::hub::span_hop_raw($tok, $label, $started_ns);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = || ($tok, $label, $started_ns);
        }
    }};
}

/// Complete `tok`'s span at the explicit instant `$end_ns` (callers pass
/// `busy_until` so the final stage carries the handler's CPU charge).
#[macro_export]
macro_rules! span_end {
    ($tok:expr, $end_ns:expr) => {{
        #[cfg(feature = "telemetry")]
        {
            if $crate::hub::active() {
                $crate::hub::span_end_raw($tok, $end_ns);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = || ($tok, $end_ns);
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::event::EventKind;
    use crate::hub::{self, HubConfig, TelemetryHub};
    use xrdma_sim::{Dur, World};

    /// With this crate's own `telemetry` feature off, `tele!` must expand
    /// to nothing: even with a hub installed, no event is recorded. This is
    /// the compile-side half of the zero-overhead contract (the lint rule
    /// is the source-side half).
    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn tele_is_a_no_op_without_the_feature() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        tele!(SeqDuplicate { seq: 1 });
        tele!(PktDrop {
            port: unreachable!("payload must not be evaluated"),
            prio: 0,
            bytes: 0,
        });
        assert_eq!(guard.event_count(), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn tele_emits_with_the_feature_on() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        world.run_for(Dur::micros(5));
        tele!(SeqDuplicate { seq: 42 });
        let evs = guard.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t.nanos(), 5_000);
        assert!(matches!(evs[0].kind, EventKind::SeqDuplicate { seq: 42 }));
    }

    #[test]
    fn no_hub_means_no_payload_construction() {
        // Guard dropped: active() is false, so even under the feature the
        // payload expression must not run.
        assert!(!hub::active());
        tele!(PktDrop {
            port: unreachable!("no hub installed"),
            prio: 0,
            bytes: 0,
        });
    }

    #[test]
    fn packet_level_events_skip_the_log_but_reach_the_ring() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        guard.record(EventKind::PktEnqueue {
            port: "h0".into(),
            prio: 0,
            bytes: 1024,
            queued_bytes: 1024,
        });
        guard.record(EventKind::SeqDuplicate { seq: 9 });
        assert_eq!(guard.event_count(), 1, "enqueue filtered from the log");
        guard.dump_flight_recorder("test");
        assert_eq!(guard.last_dump().unwrap().len(), 2, "ring saw both");
    }

    #[test]
    fn install_is_scoped_to_the_guard() {
        let world = World::new();
        assert!(!hub::active());
        {
            let _g = TelemetryHub::install(&world, HubConfig::default());
            assert!(hub::active());
        }
        assert!(!hub::active());
    }

    /// An induced `invariant!` failure must dump the flight recorder:
    /// the observer fires before the panic propagates.
    #[test]
    fn invariant_failure_dumps_flight_recorder() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        for i in 0..10 {
            guard.record(EventKind::SeqDuplicate { seq: i });
        }
        let err = std::panic::catch_unwind(|| {
            xrdma_sim::invariant!(false, "induced flight-recorder test failure");
        })
        .expect_err("invariant fires under cfg(test)");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("induced flight-recorder"), "msg: {msg}");
        let dump = guard.last_dump().expect("recorder dumped");
        // 10 seq-dups plus the invariant event itself.
        assert_eq!(dump.len(), 11);
        assert!(matches!(
            dump.last().unwrap().kind,
            EventKind::InvariantFired { .. }
        ));
    }

    #[test]
    fn abnormal_close_dumps_flight_recorder() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        guard.record(EventKind::SeqDuplicate { seq: 1 });
        guard.record(EventKind::ChannelClose {
            node: 3,
            peer: 4,
            qpn: 8,
            reason: "local",
        });
        assert!(guard.last_dump().is_none(), "clean close: no dump");
        guard.record(EventKind::ChannelClose {
            node: 3,
            peer: 4,
            qpn: 8,
            reason: "peer-dead",
        });
        let dump = guard.last_dump().expect("peer-dead close dumps");
        assert_eq!(dump.len(), 3);
    }

    /// The span macros share `tele!`'s compile-side zero-cost contract:
    /// with the feature off they expand to nothing (`span_open!` to
    /// `SpanToken::NONE`) and evaluate no operands.
    #[cfg(not(feature = "telemetry"))]
    #[test]
    // The `unreachable!` operands make the macros' never-called capture
    // closures diverge mid-body, which trips `unreachable_code` even
    // though nothing runs.
    #[allow(unreachable_code)]
    fn span_macros_are_no_ops_without_the_feature() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        let tok = span_open!(
            unreachable!("operands must not be evaluated"),
            0u32,
            0u32,
            0u64
        );
        assert!(tok.is_none());
        span_mark!(tok, Rx);
        span_end!(tok, unreachable!("operands must not be evaluated"));
        assert!(guard.span_nodes().is_empty());
        assert!(guard.latency_breakdown().is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn span_macros_build_trees_with_the_feature_on() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        let tok = span_open!(1u32, 4u32, 7u32, 64u64);
        assert!(!tok.is_none());
        world.run_for(Dur::micros(2));
        span_mark!(tok, Doorbell);
        world.run_for(Dur::micros(3));
        span_end!(tok, world.now().nanos());
        let nodes = guard.span_nodes();
        assert_eq!(nodes.len(), 3, "root + submit + doorbell: {nodes:?}");
        assert_eq!(nodes[0].name, "op");
        assert_eq!(nodes[1].name, "submit");
        assert_eq!(nodes[2].name, "doorbell");
        let bd = guard.latency_breakdown();
        assert_eq!(bd.last().unwrap().stage, "e2e");
        assert_eq!(bd.last().unwrap().sum_ns, 5_000);
        let stage_sum: u128 = bd[..bd.len() - 1].iter().map(|s| s.sum_ns).sum();
        assert_eq!(stage_sum, 5_000);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn span_open_without_a_hub_yields_none() {
        assert!(!hub::active());
        let tok = span_open!(0u32, 0u32, 0u32, 0u64);
        assert!(tok.is_none());
    }

    #[test]
    fn sampler_ticks_on_virtual_time() {
        let world = World::new();
        let guard = TelemetryHub::install(&world, HubConfig::default());
        guard.metrics().gauge_set("depth", 5.0);
        guard.hub().start_sampler(Dur::millis(1), |h| {
            h.metrics().sample_gauges(h.now().nanos())
        });
        world.run_for(Dur::millis(10));
        let rows = guard.metrics().series_rows("depth");
        // Ticks at 1..=10 ms land in buckets 1..=10; bucket 0 is empty.
        assert_eq!(rows.len(), 11);
        assert_eq!(rows.iter().filter(|r| r.1 == 5.0).count(), 10);
        // Dropping the guard stops the sampler with it.
        drop(guard);
        world.run_for(Dur::millis(10));
    }
}
