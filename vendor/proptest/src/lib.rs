//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest! { #[test] fn f(x in strategy) { .. } }`,
//! integer-range / `any::<T>()` / tuple / `collection::vec` /
//! `option::of` strategies, and `prop_assert*` — over a deterministic
//! SplitMix64 stream seeded from the test's module path and case index.
//!
//! Differences from real proptest, deliberate for this workspace:
//! * no shrinking — the failing case index and seed are printed instead,
//!   and re-running reproduces the exact failure (cases are deterministic);
//! * the case count is fixed (256, `PROPTEST_CASES` to override), so CI
//!   runs are bit-identical from machine to machine.

use std::fmt;

/// Deterministic generator stream: SplitMix64, seeded from a label hash.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the stream for one test case. Same `(label, case)` always
    /// produces the same values — property failures are reproducible by
    /// construction.
    pub fn deterministic(label: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Lemire multiply-shift; bias is irrelevant at test scale but the
        // rejection loop keeps it exact anyway.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= bound || (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Number of cases each `proptest!` test runs.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A failed `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Full-range generation, the `any::<T>()` entry point.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Element-count bounds for `collection::vec`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same Some-bias as proptest's default (3:1).
            if rng.below(4) > 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `prop::` alias some call sites use (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let label = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut __rng = $crate::TestRng::deterministic(label, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at deterministic case {}/{}: {}",
                            label, case, cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{}: {:?} != {:?}", format!($($fmt)*), a, b);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x", 3);
        let mut b = crate::TestRng::deterministic("x", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, v in crate::collection::vec(0u8..4, 1..50)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_options(pair in (any::<u64>(), 0u8..2), o in crate::option::of(1u32..5)) {
            prop_assert!(pair.1 < 2);
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }
    }
}
