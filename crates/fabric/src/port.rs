//! An egress port: per-priority queues, strict-priority scheduling,
//! store-and-forward serialization, and PFC pause obedience.
//!
//! Every unidirectional link in the fabric is driven by the `Port` on its
//! sending side. Host NICs and switches both own ports; the only difference
//! is what happens on dequeue (switches decrement PFC ingress accounting)
//! and where arrivals go (the next switch or a host's `NicSink`).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

use xrdma_sim::{time::wire_time, Dur, World};
use xrdma_telemetry::{span_hop, tele};

use crate::fabric::NicSink;
use crate::packet::{Packet, NPRIO};
use crate::stats::FabricStats;
use crate::switch::Switch;

/// Where packets leaving this port arrive.
pub(crate) enum PortDest {
    /// Arrive at a switch, tagged with the ingress index the switch knows
    /// this cable by.
    Switch { sw: Weak<Switch>, ingress: usize },
    /// Arrive at a host NIC. Held weakly: the NIC owns the fabric, not
    /// the other way around.
    Host {
        sink: RefCell<Option<Weak<dyn NicSink>>>,
    },
}

/// A queued packet plus the ingress index it entered the owning switch by
/// (usize::MAX for host-owned ports, which have no ingress accounting).
struct QEntry {
    pkt: Packet,
    ingress: usize,
}

pub struct Port {
    world: Rc<World>,
    /// Shared so per-packet telemetry events tag the port by refcount
    /// bump instead of a `String` clone (`Arc` because event logs may be
    /// collected across sweep worker threads).
    pub label: std::sync::Arc<str>,
    rate_gbps: f64,
    prop_delay: Dur,
    /// Per-priority byte capacity; enqueue beyond it drops the packet.
    limit_bytes: u64,
    queues: RefCell<[VecDeque<QEntry>; NPRIO]>,
    queued_bytes: [Cell<u64>; NPRIO],
    /// PFC pause state per priority (set remotely by the downstream device).
    paused: [Cell<bool>; NPRIO],
    busy: Cell<bool>,
    /// The switch owning this port, if any (for dequeue accounting).
    owner: RefCell<Weak<Switch>>,
    dest: PortDest,
    stats: Rc<FabricStats>,
    /// True when this port is a host NIC's uplink; pausing it counts as a
    /// host TX pause.
    pub(crate) host_owned: bool,
    /// For host-owned ports: the NIC sink of the host that owns this port,
    /// notified when PFC pauses the host's transmit path. Weak to avoid a
    /// fabric↔NIC reference cycle.
    peer_sink: RefCell<Option<Weak<dyn NicSink>>>,
    /// Backpressure hook: when total occupancy falls below the threshold
    /// after a transmit, the callback fires once (the NIC injector re-arms
    /// it each time it stops on a full port).
    drain_hook: RefCell<Option<(u64, Box<dyn Fn()>)>>,
    /// Total bytes ever transmitted (diagnostics / utilization).
    tx_bytes: Cell<u64>,
    /// Serialization timer: one rearmable slot per port instead of one
    /// boxed closure per packet. The packet rides in `in_flight` (a port
    /// serializes exactly one packet at a time).
    tx_timer: RefCell<Option<xrdma_sim::Timer>>,
    in_flight: RefCell<Option<QEntry>>,
}

impl Port {
    pub(crate) fn new(
        world: Rc<World>,
        label: String,
        rate_gbps: f64,
        prop_delay: Dur,
        limit_bytes: u64,
        dest: PortDest,
        stats: Rc<FabricStats>,
        host_owned: bool,
    ) -> Rc<Port> {
        Rc::new(Port {
            world,
            label: label.into(),
            rate_gbps,
            prop_delay,
            limit_bytes,
            queues: RefCell::new(std::array::from_fn(|_| VecDeque::new())),
            queued_bytes: std::array::from_fn(|_| Cell::new(0)),
            paused: std::array::from_fn(|_| Cell::new(false)),
            busy: Cell::new(false),
            owner: RefCell::new(Weak::new()),
            dest,
            stats,
            host_owned,
            peer_sink: RefCell::new(None),
            drain_hook: RefCell::new(None),
            tx_bytes: Cell::new(0),
            tx_timer: RefCell::new(None),
            in_flight: RefCell::new(None),
        })
    }

    pub(crate) fn set_owner(&self, sw: &Rc<Switch>) {
        *self.owner.borrow_mut() = Rc::downgrade(sw);
    }

    pub(crate) fn set_host_sink(&self, sink: &Rc<dyn NicSink>) {
        match &self.dest {
            PortDest::Host { sink: slot } => *slot.borrow_mut() = Some(Rc::downgrade(sink)),
            PortDest::Switch { .. } => panic!("{}: not a host-facing port", self.label),
        }
    }

    /// Current queue depth in bytes for a priority.
    pub fn queue_bytes(&self, prio: u8) -> u64 {
        self.queued_bytes[prio as usize].get()
    }

    /// Total bytes across all priorities.
    pub fn total_queued(&self) -> u64 {
        self.queued_bytes.iter().map(Cell::get).sum()
    }

    /// Total bytes ever transmitted.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes.get()
    }

    /// Whether the given priority is PFC-paused right now.
    pub fn is_paused(&self, prio: u8) -> bool {
        self.paused[prio as usize].get()
    }

    pub fn rate_gbps(&self) -> f64 {
        self.rate_gbps
    }

    /// Enqueue a packet from the attached host NIC (no switch ingress
    /// accounting). Returns false (and counts a drop) on overflow.
    pub fn send(self: &Rc<Self>, pkt: Packet) -> bool {
        self.enqueue(pkt, usize::MAX)
    }

    /// Enqueue a packet for transmission. `ingress` is the owning switch's
    /// ingress index the packet arrived by (`usize::MAX` for host ports).
    /// Returns false (and counts a drop) if the priority queue is full.
    pub(crate) fn enqueue(self: &Rc<Self>, mut pkt: Packet, ingress: usize) -> bool {
        // Restamp the hop clock: each traversed port measures its own
        // queueing + serialization + propagation in the packet's span.
        pkt.hop_started_ns = self.world.now().nanos();
        let prio = pkt.prio as usize;
        let size = pkt.size_bytes as u64;
        // Edge fault hooks: a scheduled fault window on this port's label
        // may kill the packet outright (link-down / drop storm) or squeeze
        // the buffer limit for the tail-drop check below.
        #[cfg(feature = "faults")]
        if xrdma_faults::port_drop(&self.label) {
            self.stats.on_drop();
            tele!(PktDrop {
                port: self.label.clone(),
                prio: pkt.prio,
                bytes: pkt.size_bytes,
            });
            return false;
        }
        let limit_bytes = self.limit_bytes;
        #[cfg(feature = "faults")]
        let limit_bytes = xrdma_faults::port_limit(&self.label).unwrap_or(limit_bytes);
        if self.queued_bytes[prio].get() + size > limit_bytes {
            self.stats.on_drop();
            tele!(PktDrop {
                port: self.label.clone(),
                prio: pkt.prio,
                bytes: pkt.size_bytes,
            });
            return false;
        }
        self.queued_bytes[prio].set(self.queued_bytes[prio].get() + size);
        self.stats
            .observe_queue_depth(self.queued_bytes[prio].get());
        tele!(PktEnqueue {
            port: self.label.clone(),
            prio: pkt.prio,
            bytes: pkt.size_bytes,
            queued_bytes: self.queued_bytes[prio].get(),
        });
        self.queues.borrow_mut()[prio].push_back(QEntry { pkt, ingress });
        self.kick();
        true
    }

    /// Set or clear PFC pause for a priority (called by the downstream
    /// device after control-frame flight time).
    pub(crate) fn set_paused(self: &Rc<Self>, prio: u8, paused: bool) {
        self.paused[prio as usize].set(paused);
        if !paused {
            self.kick();
        }
    }

    /// Inform the attached host NIC that its uplink pause state changed
    /// (only meaningful on switch down-ports facing a host). The sink
    /// reference lives on the port whose `dest` is that host — i.e. the
    /// ToR's down-port — but the pause lands on the *host's* egress port,
    /// so the fabric wires a back-reference via `peer_sink`.
    pub(crate) fn notify_host_pause(&self, prio: u8, paused: bool) {
        if let Some(sink) = self.peer_sink.borrow().as_ref().and_then(Weak::upgrade) {
            sink.pfc_pause(prio, paused);
        }
    }

    pub(crate) fn set_peer_sink(&self, sink: &Rc<dyn NicSink>) {
        *self.peer_sink.borrow_mut() = Some(Rc::downgrade(sink));
    }

    /// Start transmitting if idle and something is sendable.
    pub(crate) fn kick(self: &Rc<Self>) {
        if self.busy.get() {
            return;
        }
        // Strict priority: lowest index served first.
        let prio = {
            let queues = self.queues.borrow();
            (0..NPRIO).find(|&p| !queues[p].is_empty() && !self.paused[p].get())
        };
        let Some(prio) = prio else { return };
        let entry = self.queues.borrow_mut()[prio]
            .pop_front()
            .expect("non-empty checked");
        let size = entry.pkt.size_bytes as u64;
        xrdma_sim::invariant!(
            self.queued_bytes[prio].get() >= size,
            "port queue underflow: prio {} has {} bytes, dequeuing {}",
            prio,
            self.queued_bytes[prio].get(),
            size
        );
        self.queued_bytes[prio].set(self.queued_bytes[prio].get() - size);
        self.busy.set(true);
        let ser = wire_time(size, self.rate_gbps);
        *self.in_flight.borrow_mut() = Some(entry);
        if self.tx_timer.borrow().is_none() {
            // Weak: the timer slot must not pin the port (ports hold the
            // world, which owns the slot — a strong capture would cycle).
            let me = Rc::downgrade(self);
            *self.tx_timer.borrow_mut() = Some(self.world.timer(move || {
                let Some(me) = me.upgrade() else { return };
                let entry = me.in_flight.borrow_mut().take().expect("tx in flight");
                me.tx_done(entry);
            }));
        }
        self.tx_timer
            .borrow()
            .as_ref()
            .expect("just installed")
            .arm_in(ser);
    }

    /// Arm a one-shot drain notification: when total occupancy drops below
    /// `threshold` after a transmit, `cb` fires and the hook clears. Fires
    /// immediately if already below.
    pub fn arm_drain_hook(&self, threshold: u64, cb: impl Fn() + 'static) {
        if self.total_queued() < threshold {
            cb();
        } else {
            // xrdma-lint: allow(hot-path-alloc) -- armed once per drain wait, not per packet
            *self.drain_hook.borrow_mut() = Some((threshold, Box::new(cb)));
        }
    }

    /// Serialization finished: hand off to the wire, notify the owner for
    /// PFC accounting, and go look for more work.
    fn tx_done(self: &Rc<Self>, entry: QEntry) {
        let size = entry.pkt.size_bytes;
        self.tx_bytes.set(self.tx_bytes.get() + size as u64);
        // PFC dequeue accounting happens at transmit time: the buffer the
        // ingress counter protects is freed now.
        if entry.ingress != usize::MAX {
            if let Some(sw) = self.owner.borrow().upgrade() {
                sw.on_dequeued(entry.ingress, entry.pkt.prio, size);
            }
        }
        // Flight across the cable.
        let pkt = entry.pkt;
        match &self.dest {
            PortDest::Switch { sw, ingress } => {
                let sw = sw.clone();
                let ingress = *ingress;
                let label = self.label.clone();
                self.world.schedule_in(self.prop_delay, move || {
                    record_hop(&label, &pkt);
                    if let Some(sw) = sw.upgrade() {
                        sw.receive(pkt, ingress);
                    }
                });
            }
            PortDest::Host { sink } => {
                let sink = sink.borrow().clone();
                let stats = self.stats.clone();
                let label = self.label.clone();
                self.world.schedule_in(self.prop_delay, move || {
                    stats.on_delivered(pkt.size_bytes);
                    record_hop(&label, &pkt);
                    if let Some(sink) = sink.as_ref().and_then(Weak::upgrade) {
                        sink.deliver(pkt);
                    }
                });
            }
        }
        self.busy.set(false);
        self.kick();
        // Fire the drain hook last, after kick() possibly refilled.
        let fire = match self.drain_hook.borrow().as_ref() {
            Some(&(threshold, _)) => self.total_queued() < threshold,
            None => false,
        };
        if fire {
            if let Some((_, cb)) = self.drain_hook.borrow_mut().take() {
                cb();
            }
        }
    }
}

/// Record one per-hop span child at delivery time (end of propagation).
/// Underscore names keep the no-telemetry build warning-free — the macro
/// expands to nothing there.
fn record_hop(_label: &std::sync::Arc<str>, _pkt: &Packet) {
    span_hop!(_pkt.span, _label, _pkt.hop_started_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, Packet};
    use std::any::Any;

    struct Collect {
        got: RefCell<Vec<(u64, u32)>>, // (arrival ns, size)
        world: Rc<World>,
    }
    impl NicSink for Collect {
        fn deliver(&self, pkt: Packet) {
            self.got
                .borrow_mut()
                .push((self.world.now().nanos(), pkt.size_bytes));
        }
        fn pfc_pause(&self, _prio: u8, _paused: bool) {}
    }

    fn host_port(world: &Rc<World>, rate: f64) -> (Rc<Port>, Rc<Collect>) {
        let stats = FabricStats::new();
        let port = Port::new(
            world.clone(),
            "test".into(),
            rate,
            Dur::nanos(100),
            10_000,
            PortDest::Host {
                sink: RefCell::new(None),
            },
            stats,
            true,
        );
        let sink = Rc::new(Collect {
            got: RefCell::new(Vec::new()),
            world: world.clone(),
        });
        port.set_host_sink(&(sink.clone() as Rc<dyn NicSink>));
        (port, sink)
    }

    fn pkt(size: u32, prio: u8) -> Packet {
        Packet::new(
            NodeId(0),
            NodeId(1),
            prio,
            size,
            1,
            Box::new(()) as Box<dyn Any>,
        )
    }

    #[test]
    fn serialization_plus_prop_delay() {
        let w = World::new();
        let (port, sink) = host_port(&w, 25.0);
        port.enqueue(pkt(1000, 3), usize::MAX);
        w.run();
        // 1000 B at 25 Gb/s = 320 ns + 100 ns prop.
        assert_eq!(*sink.got.borrow(), vec![(420, 1000)]);
        assert_eq!(port.tx_bytes(), 1000);
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let w = World::new();
        let (port, sink) = host_port(&w, 25.0);
        port.enqueue(pkt(1000, 3), usize::MAX);
        port.enqueue(pkt(1000, 3), usize::MAX);
        w.run();
        let got = sink.got.borrow();
        assert_eq!(got[0].0, 420);
        assert_eq!(got[1].0, 740, "second waits for first's serialization");
    }

    #[test]
    fn strict_priority_preempts_between_packets() {
        let w = World::new();
        let (port, sink) = host_port(&w, 25.0);
        // Fill with low-prio, then a high-prio arrives: it should jump the
        // queue (but not the in-flight packet).
        port.enqueue(pkt(1000, 6), usize::MAX);
        port.enqueue(pkt(1000, 6), usize::MAX);
        port.enqueue(pkt(100, 0), usize::MAX);
        w.run();
        let got = sink.got.borrow();
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].1, 100, "high-prio served before second low-prio");
    }

    #[test]
    fn pause_blocks_only_that_priority() {
        let w = World::new();
        let (port, sink) = host_port(&w, 25.0);
        port.set_paused(3, true);
        port.enqueue(pkt(500, 3), usize::MAX);
        port.enqueue(pkt(500, 6), usize::MAX);
        w.run_for(Dur::micros(10));
        assert_eq!(sink.got.borrow().len(), 1, "only prio-6 flowed");
        port.set_paused(3, false);
        w.run();
        assert_eq!(sink.got.borrow().len(), 2);
    }

    #[test]
    fn full_queue_drops() {
        let w = World::new();
        let (port, _sink) = host_port(&w, 25.0);
        // Limit is 10_000 bytes.
        assert!(port.enqueue(pkt(6000, 3), usize::MAX));
        assert!(
            port.enqueue(pkt(6000, 3), usize::MAX),
            "first is in flight, queue has room"
        );
        // Now ~6000 queued (one transmitting); next 6000 would exceed.
        assert!(!port.enqueue(pkt(6000, 3), usize::MAX));
    }

    #[test]
    fn queue_bytes_tracks_occupancy() {
        let w = World::new();
        let (port, _sink) = host_port(&w, 25.0);
        port.enqueue(pkt(1000, 3), usize::MAX);
        port.enqueue(pkt(2000, 3), usize::MAX);
        // First packet started transmitting immediately (dequeued).
        assert_eq!(port.queue_bytes(3), 2000);
        w.run();
        assert_eq!(port.queue_bytes(3), 0);
        assert_eq!(port.total_queued(), 0);
    }
}
