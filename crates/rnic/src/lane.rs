//! Per-host RNIC state for the `Send` lane engine (DESIGN.md §3.15): the
//! port of the QP / CQ / DCQCN data path from the `Rc<World>`-rooted
//! [`crate::engine::Rnic`] onto plain owned structs.
//!
//! The porting rules this module demonstrates (and the S1
//! `non-send-shard-state` lint enforces, since every type here ends in
//! `Lane`):
//!
//! * **Handle indices instead of `Rc` reachability.** A QP is
//!   `rnic.qps[qpn]`; a peer QP is `(peer_host, peer_qpn)` — plain
//!   numbers that cross lanes inside packets, never pointers.
//! * **Emission, not scheduling.** Methods return what must happen
//!   ([`Pump`], [`RxData`]) and the glue layer (xrdma-core's lane
//!   module) owns the calendar: every timer arm happens at an identical
//!   seq-allocation point regardless of shard count.
//! * **Reuse of the pure protocol cores.** [`DcqcnRp`]/[`DcqcnNp`] and
//!   the RESET→INIT→RTR→RTS [`QpState`] discipline are shared with the
//!   serial stack verbatim — they were already `Send` plain data.
//!
//! The data path itself is the serial engine's, at packet granularity:
//! MTU fragmentation, per-packet PSNs, cumulative hardware ACK, NAK on
//! sequence gap, go-back-N retransmission from the oldest unacked PSN,
//! DCQCN pacing on the send side and ECN→CNP on the receive side.

use std::collections::VecDeque;

use crate::dcqcn::{DcqcnConfig, DcqcnNp, DcqcnRp};
use crate::qp::QpState;

/// Wire overhead per packet (Eth + IP + UDP + BTH ≈ 64 B), matching the
/// serial fabric's accounting.
pub const LANE_HDR_BYTES: u32 = 64;

/// RNIC-lane tunables.
#[derive(Clone, Copy, Debug)]
pub struct RnicLaneConfig {
    /// Path MTU for fragmentation.
    pub mtu: u32,
    /// Hardware ACK window: max unacked fragments in flight per QP.
    pub max_unacked: usize,
    /// Go-back-N retransmission timeout.
    pub retx_timeout_ns: u64,
    pub dcqcn: DcqcnConfig,
}

impl Default for RnicLaneConfig {
    fn default() -> RnicLaneConfig {
        RnicLaneConfig {
            mtu: 4096,
            max_unacked: 64,
            retx_timeout_ns: 500_000,
            dcqcn: DcqcnConfig::default(),
        }
    }
}

/// The lane stack's base transport header. `M` is the middleware message
/// riding on the last fragment (`Clone` because go-back-N may resend it).
#[derive(Clone, Debug)]
pub struct LaneBth<M> {
    pub src_host: u32,
    pub src_qpn: u32,
    pub dst_qpn: u32,
    /// Connection token: stale packets from a previous incarnation of
    /// this QP pair are rejected, as in the serial engine.
    pub token: u64,
    pub kind: LaneBthKind<M>,
}

#[derive(Clone, Debug)]
pub enum LaneBthKind<M> {
    Data {
        psn: u32,
        frag_bytes: u32,
        last: bool,
        /// Present on the last fragment only: the reassembled message.
        msg: Option<M>,
    },
    /// Cumulative acknowledgement: every PSN `< psn` is delivered.
    Ack { psn: u32 },
    /// Sequence-gap NAK: receiver expected `expected`.
    Nak { expected: u32 },
    /// DCQCN congestion notification.
    Cnp,
}

impl<M> LaneBth<M> {
    /// Wire size of the packet carrying this header.
    pub fn wire_bytes(&self) -> u32 {
        match &self.kind {
            LaneBthKind::Data { frag_bytes, .. } => LANE_HDR_BYTES + frag_bytes,
            _ => LANE_HDR_BYTES,
        }
    }
}

/// A posted send WR (one middleware message).
#[derive(Clone, Debug)]
struct SqWrLane<M> {
    wr_id: u64,
    size: u32,
    msg: M,
}

/// One transmitted, not-yet-acked fragment (the go-back-N window entry).
#[derive(Clone, Debug)]
struct UnackedLane<M> {
    psn: u32,
    frag_bytes: u32,
    last: bool,
    wr_id: u64,
    msg: Option<M>,
}

/// What the send-side pump wants next.
#[derive(Debug)]
pub enum Pump<M> {
    /// Hand this packet to the NIC egress now.
    Tx(LaneBth<M>),
    /// Pacing: nothing may launch before this instant.
    WaitUntil(u64),
    /// Nothing to send (empty SQ, closed window, or wrong state).
    Idle,
}

/// Receive verdict for one data packet.
#[derive(Debug)]
pub struct RxData<M> {
    /// A fully reassembled in-order message to deliver upward.
    pub deliver: Option<M>,
    /// Cumulative ACK to emit (every data packet is acked, as hardware
    /// does; the value is the next expected PSN).
    pub ack: Option<u32>,
    /// Sequence gap: emit a NAK for this expected PSN (sent once per
    /// gap, suppressed until the gap closes).
    pub nak: Option<u32>,
    /// ECN mark seen and the NP pacer allows a CNP now.
    pub cnp: bool,
}

impl<M> Default for RxData<M> {
    fn default() -> RxData<M> {
        RxData {
            deliver: None,
            ack: None,
            nak: None,
            cnp: false,
        }
    }
}

/// One RC queue pair as owned lane state.
#[derive(Debug)]
pub struct QpLane<M> {
    pub qpn: u32,
    pub peer_host: u32,
    pub peer_qpn: u32,
    pub token: u64,
    pub state: QpState,
    // --- send side ---
    sq: VecDeque<SqWrLane<M>>,
    /// Bytes of `sq.front()` already fragmented onto the wire.
    cur_off: u32,
    next_psn: u32,
    unacked: VecDeque<UnackedLane<M>>,
    /// Index into `unacked` from which fragments must be (re)sent;
    /// `== unacked.len()` means everything transmitted once.
    resend: usize,
    pub rp: DcqcnRp,
    pacing_next_ns: u64,
    /// Glue flag: a pacing wakeup is already scheduled.
    pub pacing_armed: bool,
    /// Glue flag: a retransmission timer is outstanding.
    pub retx_armed: bool,
    /// Lazy retx deadline: pushed forward on every ack progress.
    pub retx_deadline_ns: u64,
    /// Glue flag: a DCQCN reaction-point tick chain is running.
    pub dcqcn_armed: bool,
    pub retransmissions: u64,
    // --- receive side ---
    expected_psn: u32,
    /// Suppresses duplicate NAKs for the same gap.
    nak_sent_for: Option<u32>,
    pub np: DcqcnNp,
    // --- counters ---
    pub tx_msgs: u64,
    pub rx_msgs: u64,
    pub tx_frags: u64,
    pub rx_frags: u64,
    pub dup_frags: u64,
    pub cnps_rx: u64,
    // Copied from the RNIC config at create_qp so pump() needs no
    // config reference.
    mtu: u32,
    max_unacked: usize,
}

impl<M: Clone> QpLane<M> {
    fn new(qpn: u32, dcqcn: DcqcnConfig) -> QpLane<M> {
        QpLane {
            qpn,
            peer_host: u32::MAX,
            peer_qpn: u32::MAX,
            token: 0,
            state: QpState::Reset,
            sq: VecDeque::new(),
            cur_off: 0,
            next_psn: 0,
            unacked: VecDeque::new(),
            resend: 0,
            rp: DcqcnRp::new(dcqcn),
            pacing_next_ns: 0,
            pacing_armed: false,
            retx_armed: false,
            retx_deadline_ns: 0,
            dcqcn_armed: false,
            retransmissions: 0,
            expected_psn: 0,
            nak_sent_for: None,
            np: DcqcnNp::default(),
            tx_msgs: 0,
            rx_msgs: 0,
            tx_frags: 0,
            rx_frags: 0,
            dup_frags: 0,
            cnps_rx: 0,
            mtu: 4096,
            max_unacked: 64,
        }
    }

    /// Walk the verbs state ladder to RTS against `(peer_host,
    /// peer_qpn, token)` — the same RESET→INIT→RTR→RTS transitions the
    /// serial QP enforces, collapsed into the post-handshake call.
    pub fn connect(&mut self, peer_host: u32, peer_qpn: u32, token: u64) {
        assert_eq!(self.state, QpState::Reset, "connect from RESET only");
        self.peer_host = peer_host;
        self.peer_qpn = peer_qpn;
        self.token = token;
        self.state = QpState::Init;
        self.state = QpState::Rtr;
        self.state = QpState::Rts;
    }

    /// Post one message send. Returns false (and drops nothing) when the
    /// QP is not RTS.
    pub fn post_send(&mut self, wr_id: u64, size: u32, msg: M) -> bool {
        if self.state != QpState::Rts {
            return false;
        }
        self.sq.push_back(SqWrLane { wr_id, size, msg });
        true
    }

    /// Posted messages not yet fully fragmented plus unacked fragments —
    /// nonzero means the retx timer must stay armed.
    pub fn in_flight(&self) -> usize {
        self.sq.len() + self.unacked.len()
    }

    fn pace_ns(&self, wire_bytes: u32) -> u64 {
        let ns = f64::from(wire_bytes) * 8.0 / self.rp.rate_gbps();
        (ns as u64).max(1)
    }

    /// Produce the next packet the send side owes the wire, if pacing
    /// and the ack window allow. Retransmissions (entries at and past
    /// `resend`) always go out before new fragments.
    pub fn pump(&mut self, now_ns: u64) -> Pump<M> {
        if self.state != QpState::Rts {
            return Pump::Idle;
        }
        let has_retx = self.resend < self.unacked.len();
        if !has_retx && self.sq.is_empty() {
            return Pump::Idle;
        }
        if !has_retx && self.unacked.len() >= self.max_unacked_cap() {
            return Pump::Idle; // ack-clocked: window closed
        }
        if now_ns < self.pacing_next_ns {
            return Pump::WaitUntil(self.pacing_next_ns);
        }
        let bth = if has_retx {
            let d = &self.unacked[self.resend];
            self.resend += 1;
            self.tx_frags += 1;
            LaneBth {
                src_host: u32::MAX, // stamped by the glue
                src_qpn: self.qpn,
                dst_qpn: self.peer_qpn,
                token: self.token,
                kind: LaneBthKind::Data {
                    psn: d.psn,
                    frag_bytes: d.frag_bytes,
                    last: d.last,
                    msg: d.msg.clone(),
                },
            }
        } else {
            let Some(wr) = self.sq.front() else {
                return Pump::Idle;
            };
            let remaining = wr.size - self.cur_off;
            let frag_bytes = remaining.min(self.mtu_cap());
            let last = self.cur_off + frag_bytes == wr.size;
            let psn = self.next_psn;
            self.next_psn = self.next_psn.wrapping_add(1);
            self.tx_frags += 1;
            let (wr_id, msg) = if last {
                // xrdma-lint: allow(unwrap-in-api) -- front() was read above in this branch; this pops that same WR
                let wr = self.sq.pop_front().expect("front");
                self.cur_off = 0;
                self.tx_msgs += 1;
                (wr.wr_id, Some(wr.msg))
            } else {
                self.cur_off += frag_bytes;
                (wr.wr_id, None)
            };
            self.unacked.push_back(UnackedLane {
                psn,
                frag_bytes,
                last,
                wr_id,
                msg: msg.clone(),
            });
            self.resend = self.unacked.len();
            LaneBth {
                src_host: u32::MAX,
                src_qpn: self.qpn,
                dst_qpn: self.peer_qpn,
                token: self.token,
                kind: LaneBthKind::Data {
                    psn,
                    frag_bytes,
                    last,
                    msg,
                },
            }
        };
        let wire = bth.wire_bytes();
        self.pacing_next_ns = now_ns + self.pace_ns(wire);
        self.rp
            .on_bytes_sent(xrdma_sim::Time(now_ns), u64::from(wire));
        Pump::Tx(bth)
    }

    // The two caps live on the config; stored per-QP-call to keep the
    // struct free of a config copy. Set by `RnicLane` before pumping.
    fn mtu_cap(&self) -> u32 {
        self.mtu
    }
    fn max_unacked_cap(&self) -> usize {
        self.max_unacked
    }

    /// Cumulative ACK: release every fragment with PSN `< psn`, pushing
    /// a CQE per completed message. Returns the released fragment count.
    pub fn on_ack(&mut self, now_ns: u64, psn: u32, retx_timeout_ns: u64, cq: &mut CqLane) -> u64 {
        let mut released = 0u64;
        while let Some(front) = self.unacked.front() {
            // Wrapping "front.psn < psn": the in-flight window is tiny
            // compared to the u32 circle.
            if psn.wrapping_sub(front.psn) == 0 || psn.wrapping_sub(front.psn) > u32::MAX / 2 {
                break;
            }
            let Some(d) = self.unacked.pop_front() else {
                break;
            };
            self.resend = self.resend.saturating_sub(1).min(self.unacked.len());
            if d.last {
                cq.push(self.qpn, d.wr_id);
            }
            released += 1;
        }
        if released > 0 {
            self.retx_deadline_ns = now_ns + retx_timeout_ns;
        }
        released
    }

    /// Peer NAK: rewind transmission to the peer's expected PSN
    /// (go-back-N) so every fragment from the gap on is resent.
    pub fn on_nak(&mut self, expected: u32) {
        if let Some(front) = self.unacked.front() {
            let idx = expected.wrapping_sub(front.psn) as usize;
            if idx < self.unacked.len() && idx < self.resend {
                self.resend = idx;
                self.retransmissions += 1;
            }
        }
    }

    /// Retransmission timer fired. Returns the deadline to re-arm at
    /// (lazy reprogramming: ack progress pushed it forward), or `None`
    /// when nothing is in flight. On a true expiry the window rewinds to
    /// the oldest unacked fragment.
    pub fn on_retx_timeout(&mut self, now_ns: u64, retx_timeout_ns: u64) -> Option<u64> {
        if self.unacked.is_empty() {
            return None;
        }
        if now_ns < self.retx_deadline_ns {
            return Some(self.retx_deadline_ns);
        }
        self.resend = 0;
        self.retransmissions += 1;
        self.retx_deadline_ns = now_ns + retx_timeout_ns;
        Some(self.retx_deadline_ns)
    }

    /// A CNP arrived for this QP: DCQCN rate cut.
    pub fn on_cnp(&mut self, now_ns: u64) {
        self.cnps_rx += 1;
        self.rp.on_cnp(xrdma_sim::Time(now_ns));
    }

    /// Receive one data fragment. Every packet is acked (cumulative);
    /// gaps NAK once; ECN marks may emit a CNP subject to NP pacing.
    pub fn on_data(
        &mut self,
        now_ns: u64,
        psn: u32,
        last: bool,
        msg: Option<M>,
        ecn: bool,
        dcqcn: &DcqcnConfig,
    ) -> RxData<M> {
        let mut out = RxData::default();
        if psn == self.expected_psn {
            self.expected_psn = self.expected_psn.wrapping_add(1);
            self.nak_sent_for = None;
            self.rx_frags += 1;
            if last {
                self.rx_msgs += 1;
                debug_assert!(msg.is_some(), "last fragment carries the message");
                out.deliver = msg;
            }
            out.ack = Some(self.expected_psn);
        } else if self.expected_psn.wrapping_sub(psn) <= u32::MAX / 2 {
            // Behind the edge: duplicate of something delivered — re-ack
            // so the sender's window can advance past a lost ACK.
            self.dup_frags += 1;
            out.ack = Some(self.expected_psn);
        } else {
            // Ahead of the edge: a fragment was lost. NAK once per gap.
            if self.nak_sent_for != Some(self.expected_psn) {
                self.nak_sent_for = Some(self.expected_psn);
                out.nak = Some(self.expected_psn);
            }
        }
        if ecn && self.np.should_send_cnp(xrdma_sim::Time(now_ns), dcqcn) {
            out.cnp = true;
        }
        out
    }
}

/// Completion queue as owned lane state: a FIFO of `(qpn, wr_id)` pairs
/// with drain-batch statistics (the shared-CQ batching signal xr-stat
/// reports for the serial stack).
#[derive(Debug, Default)]
pub struct CqLane {
    queue: VecDeque<(u32, u64)>,
    pub cqes: u64,
    pub polls: u64,
    pub max_batch: u64,
}

impl CqLane {
    pub fn push(&mut self, qpn: u32, wr_id: u64) {
        self.queue.push_back((qpn, wr_id));
        self.cqes += 1;
    }

    /// Drain every pending CQE into `out` (appending), recording batch
    /// statistics. Returns the batch size.
    pub fn drain(&mut self, out: &mut Vec<(u32, u64)>) -> usize {
        let n = self.queue.len();
        if n > 0 {
            self.polls += 1;
            self.max_batch = self.max_batch.max(n as u64);
            out.extend(self.queue.drain(..));
        }
        n
    }

    pub fn depth(&self) -> usize {
        self.queue.len()
    }
}

/// Per-host RNIC: the QP table (handle-indexed) plus the shared CQ.
#[derive(Debug)]
pub struct RnicLane<M> {
    pub cfg: RnicLaneConfig,
    pub qps: Vec<QpLane<M>>,
    pub cq: CqLane,
    /// Packets rejected by token/QPN validation (stale incarnations).
    pub stale_pkts: u64,
}

impl<M: Clone> RnicLane<M> {
    pub fn new(cfg: RnicLaneConfig) -> RnicLane<M> {
        RnicLane {
            cfg,
            qps: Vec::new(),
            cq: CqLane::default(),
            stale_pkts: 0,
        }
    }

    /// Allocate a QP in RESET; returns its handle (the index — the
    /// handle-index porting rule).
    pub fn create_qp(&mut self) -> u32 {
        let qpn = self.qps.len() as u32;
        let mut qp = QpLane::new(qpn, self.cfg.dcqcn);
        qp.mtu = self.cfg.mtu;
        qp.max_unacked = self.cfg.max_unacked;
        self.qps.push(qp);
        qpn
    }

    pub fn qp(&mut self, qpn: u32) -> &mut QpLane<M> {
        &mut self.qps[qpn as usize]
    }

    /// Validate an arriving packet's destination QP and token. `None`
    /// means the packet is stale and must be dropped (counted).
    pub fn validate(&mut self, bth: &LaneBth<M>) -> Option<u32> {
        let Some(qp) = self.qps.get(bth.dst_qpn as usize) else {
            self.stale_pkts += 1;
            return None;
        };
        if qp.state != QpState::Rts || qp.token != bth.token {
            self.stale_pkts += 1;
            return None;
        }
        Some(bth.dst_qpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnic() -> RnicLane<&'static str> {
        RnicLane::new(RnicLaneConfig::default())
    }

    /// Drive every packet `a`'s pump produces straight into `b`,
    /// returning delivered messages; acks flow back immediately.
    fn drive(
        a: &mut RnicLane<&'static str>,
        aq: u32,
        b: &mut RnicLane<&'static str>,
        bq: u32,
        now: &mut u64,
    ) -> Vec<&'static str> {
        let mut delivered = Vec::new();
        loop {
            match a.qp(aq).pump(*now) {
                Pump::Idle => break,
                Pump::WaitUntil(t) => *now = t,
                Pump::Tx(bth) => {
                    if let LaneBthKind::Data { psn, last, msg, .. } = bth.kind {
                        let rx =
                            b.qp(bq)
                                .on_data(*now, psn, last, msg, false, &DcqcnConfig::default());
                        if let Some(m) = rx.deliver {
                            delivered.push(m);
                        }
                        if let Some(ack) = rx.ack {
                            let mut cq = std::mem::take(&mut a.cq);
                            a.qp(aq).on_ack(*now, ack, 500_000, &mut cq);
                            a.cq = cq;
                        }
                    }
                }
            }
        }
        delivered
    }

    fn pair() -> (RnicLane<&'static str>, u32, RnicLane<&'static str>, u32) {
        let mut a = rnic();
        let mut b = rnic();
        let aq = a.create_qp();
        let bq = b.create_qp();
        a.qp(aq).connect(1, bq, 77);
        b.qp(bq).connect(0, aq, 77);
        (a, aq, b, bq)
    }

    #[test]
    fn fragments_and_reassembles_in_order() {
        let (mut a, aq, mut b, bq) = pair();
        assert!(a.qp(aq).post_send(1, 10_000, "big")); // 3 frags at 4 KiB
        assert!(a.qp(aq).post_send(2, 100, "small")); // 1 frag
        let mut now = 0;
        let got = drive(&mut a, aq, &mut b, bq, &mut now);
        assert_eq!(got, vec!["big", "small"]);
        assert_eq!(a.qp(aq).tx_frags, 4);
        assert_eq!(b.qp(bq).rx_msgs, 2);
        // Both messages completed on the sender CQ.
        let mut out = Vec::new();
        a.cq.drain(&mut out);
        assert_eq!(out, vec![(aq, 1), (aq, 2)]);
        assert_eq!(a.qp(aq).in_flight(), 0);
    }

    #[test]
    fn gap_naks_once_and_goes_back_n() {
        let (mut a, aq, mut b, bq) = pair();
        a.qp(aq).post_send(1, 9000, "m"); // 3 frags: psn 0,1,2
        let mut pkts = Vec::new();
        let mut now = 0;
        loop {
            match a.qp(aq).pump(now) {
                Pump::Idle => break,
                Pump::WaitUntil(t) => now = t,
                Pump::Tx(bth) => pkts.push(bth),
            }
        }
        assert_eq!(pkts.len(), 3);
        // Lose psn 0; deliver psn 1 → NAK(0), once.
        let LaneBthKind::Data { psn, last, msg, .. } = pkts[1].kind.clone() else {
            panic!("data")
        };
        let rx = b
            .qp(bq)
            .on_data(now, psn, last, msg, false, &DcqcnConfig::default());
        assert_eq!(rx.nak, Some(0));
        assert!(rx.deliver.is_none() && rx.ack.is_none());
        // Same gap again (psn 2): NAK suppressed.
        let LaneBthKind::Data { psn, last, msg, .. } = pkts[2].kind.clone() else {
            panic!("data")
        };
        let rx = b
            .qp(bq)
            .on_data(now, psn, last, msg, false, &DcqcnConfig::default());
        assert_eq!(rx.nak, None, "one NAK per gap");
        // Sender rewinds to 0 and the full retry completes the message.
        a.qp(aq).on_nak(0);
        assert_eq!(a.qp(aq).retransmissions, 1);
        let got = drive(&mut a, aq, &mut b, bq, &mut now);
        assert_eq!(got, vec!["m"]);
        // Out-of-order frags were dropped (not buffered), so the full
        // go-back-N replay arrives fresh: 3 in-order receptions total.
        assert_eq!(b.qp(bq).rx_frags, 3);
    }

    #[test]
    fn retx_timer_is_lazy_and_rewinds_on_expiry() {
        let (mut a, aq, _b, _bq) = pair();
        a.qp(aq).post_send(1, 100, "m");
        let mut now = 0;
        while let Pump::Tx(_) | Pump::WaitUntil(_) = {
            let p = a.qp(aq).pump(now);
            if let Pump::WaitUntil(t) = p {
                now = t;
            }
            p
        } {}
        a.qp(aq).retx_deadline_ns = 500_000;
        // Early fire: just re-arm at the stored deadline.
        assert_eq!(a.qp(aq).on_retx_timeout(100_000, 500_000), Some(500_000));
        assert_eq!(a.qp(aq).retransmissions, 0);
        // True expiry: rewind and count.
        assert_eq!(a.qp(aq).on_retx_timeout(600_000, 500_000), Some(1_100_000));
        assert_eq!(a.qp(aq).retransmissions, 1);
        match a.qp(aq).pump(now.max(600_000)) {
            Pump::Tx(bth) => match bth.kind {
                LaneBthKind::Data { psn, .. } => assert_eq!(psn, 0, "resends from oldest"),
                k => panic!("expected data, got {k:?}"),
            },
            p => panic!("expected retx, got {p:?}"),
        }
    }

    #[test]
    fn window_closes_at_max_unacked() {
        let mut a: RnicLane<&'static str> = RnicLane::new(RnicLaneConfig {
            max_unacked: 2,
            ..RnicLaneConfig::default()
        });
        let aq = a.create_qp();
        a.qp(aq).connect(1, 0, 9);
        a.qp(aq).post_send(1, 100_000, "w"); // many frags
        let mut now = 0;
        let mut sent = 0;
        loop {
            match a.qp(aq).pump(now) {
                Pump::Tx(_) => sent += 1,
                Pump::WaitUntil(t) => now = t,
                Pump::Idle => break,
            }
        }
        assert_eq!(sent, 2, "ack-clocked window closes");
        // One cumulative ack reopens it.
        let mut cq = CqLane::default();
        let mut qp = std::mem::replace(a.qp(aq), QpLane::new(0, DcqcnConfig::default()));
        qp.on_ack(now, 1, 500_000, &mut cq);
        assert!(matches!(qp.pump(now), Pump::WaitUntil(_) | Pump::Tx(_)));
        *a.qp(aq) = qp;
    }

    #[test]
    fn ecn_packets_emit_paced_cnps_and_cut_rate() {
        let (mut a, aq, mut b, bq) = pair();
        let cfg = DcqcnConfig::default();
        let rx = b.qp(bq).on_data(0, 0, true, Some("x"), true, &cfg);
        assert!(rx.cnp, "first ECN mark emits a CNP");
        let rx = b.qp(bq).on_data(1_000, 1, true, Some("y"), true, &cfg);
        assert!(!rx.cnp, "CNP paced within the interval");
        let line = a.qp(aq).rp.rate_gbps();
        a.qp(aq).on_cnp(0);
        assert!(a.qp(aq).rp.rate_gbps() < line, "rate cut");
        assert_eq!(a.qp(aq).cnps_rx, 1);
    }

    #[test]
    fn stale_tokens_rejected() {
        let (mut a, _aq, _b, _bq) = pair();
        let bth: LaneBth<&'static str> = LaneBth {
            src_host: 1,
            src_qpn: 0,
            dst_qpn: 0,
            token: 999, // wrong incarnation
            kind: LaneBthKind::Ack { psn: 1 },
        };
        assert_eq!(a.validate(&bth), None);
        assert_eq!(a.stale_pkts, 1);
        let bad_qpn = LaneBth { dst_qpn: 42, ..bth };
        assert_eq!(a.validate(&bad_qpn), None);
        assert_eq!(a.stale_pkts, 2);
    }
}
