//! # xrdma-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§VII), each
//! regenerating the corresponding rows/series on the simulated testbed and
//! printing **paper-reported vs measured** so EXPERIMENTS.md can record the
//! comparison. Absolute values depend on the simulator calibration; the
//! reproduced result is the *shape* — orderings, ratios, crossovers.
//!
//! | binary                | experiment                                 |
//! |-----------------------|--------------------------------------------|
//! | `fig7_latency`        | ping-pong latency vs size, all stacks      |
//! | `fig8_establishment`  | ESSD restart → steady-state IOPS ramp      |
//! | `fig9_rnr`            | RNR counter: X-RDMA vs native verbs        |
//! | `fig10_flowctl`       | incast bandwidth/CNP/pause, ±flow control  |
//! | `fig11_production`    | online upgrade: QP count, IOPS, memcache   |
//! | `fig12_antijitter`    | ESSD/X-DB surge: throughput vs latency     |
//! | `tab_establishment`   | §VII-C connect latencies + 4096-conn storm |
//! | `tab_loc`             | §VII-B lines-of-code comparison            |
//! | `exp_qp_scalability`  | §VII-F QP-context cache up to 60 K QPs     |
//! | `exp_srq`             | §VII-F SRQ memory vs RNR trade            |
//! | `exp_memmode`         | §VII-F page-mode comparison                |
//! | `exp_jitter`          | §III Issue 2: congestion jitter magnitude  |
//! | `exp_ablation`        | design-choice ablations (polling, window…) |
//! | `exp_dct`             | §IX future work: DCT vs RC mesh            |
//! | `exp_lossy`           | §IX future work: dropping PFC              |

pub mod report;
pub mod scenarios;

pub use report::Report;
