//! A minimal active-message endpoint over the simulated verbs API,
//! parameterized by a [`StackProfile`]. This is the common skeleton of the
//! raw-verbs / UCX / libfabric / xio baselines: pre-posted receives, an
//! eager path with a stack-specific header, and a rendezvous path
//! (descriptor + RDMA Read) above `eager_max`.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::{Rc, Weak};

use xrdma_rnic::cq::CqeOpcode;
use xrdma_rnic::verbs::Payload;
use xrdma_rnic::{
    AccessFlags, CompletionQueue, Cqe, PageKind, Qp, QpCaps, RecvWr, Rnic, SendOp, SendWr,
};
use xrdma_sim::{CpuThread, Dur};

use crate::profile::StackProfile;

/// Number of pre-posted receives.
const RQ_DEPTH: u32 = 128;
/// Max in-flight sends before the endpoint queues internally.
const SQ_WINDOW: usize = 64;

/// Wire framing for the generic AM stack (travels as real bytes).
const AM_EAGER: u8 = 1;
const AM_RDV: u8 = 2;

pub struct AmEndpoint {
    pub rnic: Rc<Rnic>,
    pub qp: Rc<Qp>,
    cq: Rc<CompletionQueue>,
    pub thread: Rc<CpuThread>,
    profile: StackProfile,
    recv_buf_len: u64,
    recv_bufs: RefCell<BTreeMap<u64, (u64, u32)>>, // wr_id -> (addr, lkey)
    mr_pool: RefCell<Vec<Rc<xrdma_rnic::Mr>>>,
    on_msg: RefCell<Option<Box<dyn Fn(&Rc<AmEndpoint>, u64)>>>,
    inflight: Cell<usize>,
    queued: RefCell<std::collections::VecDeque<u64>>,
    pending_reads: RefCell<HashMap<u64, u64>>, // read wr_id -> msg len
    next_wr: Cell<u64>,
    me: RefCell<Weak<AmEndpoint>>,
    pub sent: Cell<u64>,
    pub received: Cell<u64>,
}

impl AmEndpoint {
    /// Build an endpoint on `rnic`. The QP still needs connecting
    /// (`Rnic::connect_pair` or the connection manager).
    pub fn new(rnic: &Rc<Rnic>, profile: StackProfile, max_msg: u64) -> Rc<AmEndpoint> {
        let pd = rnic.alloc_pd();
        let cq = rnic.create_cq(4096);
        let qp = rnic.create_qp(
            &pd,
            cq.clone(),
            cq.clone(),
            QpCaps {
                max_send_wr: 4096,
                max_recv_wr: RQ_DEPTH as usize + 8,
            },
            None,
        );
        let thread = CpuThread::new(
            rnic.world().clone(),
            format!("{}-n{}", profile.name, rnic.node().0),
        );
        let recv_buf_len = profile.hdr_bytes as u64 + profile.eager_max.min(max_msg) + 64;
        let ep = Rc::new(AmEndpoint {
            rnic: rnic.clone(),
            qp,
            cq,
            thread,
            profile,
            recv_buf_len,
            recv_bufs: RefCell::new(BTreeMap::new()),
            mr_pool: RefCell::new(Vec::new()),
            on_msg: RefCell::new(None),
            inflight: Cell::new(0),
            queued: RefCell::new(std::collections::VecDeque::new()),
            pending_reads: RefCell::new(HashMap::new()),
            next_wr: Cell::new(1),
            me: RefCell::new(Weak::new()),
            sent: Cell::new(0),
            received: Cell::new(0),
        });
        *ep.me.borrow_mut() = Rc::downgrade(&ep);
        // Register one big region and slice receive buffers out of it.
        // Backed (sparse) so the AM headers survive the trip.
        let mr = rnic.reg_mr(
            &pd,
            recv_buf_len * RQ_DEPTH as u64,
            AccessFlags::FULL,
            PageKind::Anonymous,
            true,
            false,
        );
        for i in 0..RQ_DEPTH as u64 {
            let addr = mr.addr + i * recv_buf_len;
            ep.recv_bufs.borrow_mut().insert(i, (addr, mr.lkey));
        }
        ep.mr_pool.borrow_mut().push(mr);
        // A second region serves rendezvous payload staging.
        let rdv = rnic.reg_mr(
            &pd,
            max_msg.max(4096) * 2,
            AccessFlags::FULL,
            PageKind::Anonymous,
            false,
            false,
        );
        ep.mr_pool.borrow_mut().push(rdv);
        // Poll loop via completion-channel notification.
        {
            let w = Rc::downgrade(&ep);
            ep.cq.set_notify(move || {
                if let Some(ep) = w.upgrade() {
                    let ep2 = ep.clone();
                    ep.thread.exec(Dur::ZERO, move |_| ep2.pump());
                }
            });
            ep.cq.req_notify();
        }
        ep
    }

    /// Post all receives once the QP is connected.
    pub fn start(self: &Rc<Self>) {
        for (&id, &(addr, lkey)) in self.recv_bufs.borrow().iter() {
            self.qp
                .post_recv(RecvWr::new(id, addr, self.recv_buf_len, lkey))
                .expect("receive queue sized for depth");
        }
    }

    pub fn set_on_msg(&self, f: impl Fn(&Rc<AmEndpoint>, u64) + 'static) {
        *self.on_msg.borrow_mut() = Some(Box::new(f));
    }

    /// The staging region used for rendezvous sends.
    fn rdv_region(&self) -> (u64, u32, u32) {
        let pool = self.mr_pool.borrow();
        let mr = &pool[1];
        (mr.addr, mr.lkey, mr.rkey)
    }

    /// Send a message of `len` bytes (size-only payload).
    pub fn send(self: &Rc<Self>, len: u64) {
        if self.inflight.get() >= SQ_WINDOW {
            self.queued.borrow_mut().push_back(len);
            return;
        }
        self.transmit(len);
    }

    fn transmit(self: &Rc<Self>, len: u64) {
        self.thread.charge(self.profile.per_send_cpu);
        self.inflight.set(self.inflight.get() + 1);
        self.sent.set(self.sent.get() + 1);
        let wr_id = self.next_wr.get();
        self.next_wr.set(wr_id + 1);
        if len <= self.profile.eager_max {
            // Eager: header + payload in one Send.
            let mut head = vec![AM_EAGER];
            head.extend_from_slice(&len.to_le_bytes());
            head.resize((self.profile.hdr_bytes.max(9)) as usize, 0);
            let total = head.len() as u64 + len;
            let wr = SendWr {
                wr_id,
                op: SendOp::Send,
                payload: Payload::Padded {
                    head: bytes::Bytes::from(head),
                    total,
                },
                remote: None,
                imm: None,
                local: None,
                signaled: true,
                span: xrdma_rnic::SpanToken::NONE,
            };
            let me = self.clone();
            self.thread.exec(Dur::ZERO, move |_| {
                me.rnic.post_send(&me.qp, wr).expect("post eager");
            });
        } else {
            // Rendezvous: ship a descriptor; receiver RDMA-Reads.
            self.thread.charge(self.profile.rendezvous_cpu);
            let (addr, _lkey, rkey) = self.rdv_region();
            let mut head = vec![AM_RDV];
            head.extend_from_slice(&len.to_le_bytes());
            head.extend_from_slice(&addr.to_le_bytes());
            head.extend_from_slice(&rkey.to_le_bytes());
            head.resize((self.profile.hdr_bytes.max(21)) as usize, 0);
            let total = head.len() as u64;
            let wr = SendWr {
                wr_id,
                op: SendOp::Send,
                payload: Payload::Padded {
                    head: bytes::Bytes::from(head),
                    total,
                },
                remote: None,
                imm: None,
                local: None,
                signaled: true,
                span: xrdma_rnic::SpanToken::NONE,
            };
            let me = self.clone();
            self.thread.exec(Dur::ZERO, move |_| {
                me.rnic.post_send(&me.qp, wr).expect("post rdv");
            });
        }
    }

    fn pump(self: &Rc<Self>) {
        loop {
            let cqes = self.cq.poll(32);
            if cqes.is_empty() {
                break;
            }
            for cqe in cqes {
                self.handle(cqe);
            }
        }
        self.cq.req_notify();
    }

    fn handle(self: &Rc<Self>, cqe: Cqe) {
        match cqe.opcode {
            CqeOpcode::Send => {
                self.inflight.set(self.inflight.get().saturating_sub(1));
                let next = self.queued.borrow_mut().pop_front();
                if let Some(len) = next {
                    self.transmit(len);
                }
            }
            CqeOpcode::Recv => {
                self.thread.charge(self.profile.per_recv_cpu);
                let slot = cqe.wr_id;
                let (addr, lkey) = *self.recv_bufs.borrow().get(&slot).expect("known slot");
                // Parse the tiny AM header.
                let head = self
                    .rnic
                    .mem()
                    .by_lkey(lkey)
                    .map(|mr| mr.read(addr, 21.min(cqe.byte_len)).unwrap_or_default())
                    .unwrap_or_default();
                // Repost immediately (fixed slot).
                let _ = self
                    .qp
                    .post_recv(RecvWr::new(slot, addr, self.recv_buf_len, lkey));
                if head.is_empty() {
                    return;
                }
                match head[0] {
                    AM_EAGER => {
                        let len = u64::from_le_bytes(head[1..9].try_into().unwrap());
                        self.deliver(len);
                    }
                    AM_RDV if head.len() >= 21 => {
                        self.thread.charge(self.profile.rendezvous_cpu);
                        let len = u64::from_le_bytes(head[1..9].try_into().unwrap());
                        let raddr = u64::from_le_bytes(head[9..17].try_into().unwrap());
                        let rkey = u32::from_le_bytes(head[17..21].try_into().unwrap());
                        let (laddr, llkey, _) = self.rdv_region();
                        let wr_id = 0x8000_0000_0000_0000 | self.next_wr.get();
                        self.next_wr.set(self.next_wr.get() + 1);
                        self.pending_reads.borrow_mut().insert(wr_id, len);
                        let wr = SendWr::read(wr_id, laddr, llkey, len, raddr, rkey);
                        let me = self.clone();
                        self.thread.exec(Dur::ZERO, move |_| {
                            me.rnic.post_send(&me.qp, wr).expect("post rdv read");
                        });
                    }
                    _ => {}
                }
            }
            CqeOpcode::Read => {
                let len = self.pending_reads.borrow_mut().remove(&cqe.wr_id);
                if let Some(len) = len {
                    self.deliver(len);
                }
            }
            _ => {}
        }
    }

    fn deliver(self: &Rc<Self>, len: u64) {
        self.received.set(self.received.get() + 1);
        if let Some(cb) = self.on_msg.borrow().as_ref() {
            cb(self, len);
        }
    }
}
