//! The X-RDMA wire header: what travels inside every eager Send.
//!
//! Bare-data mode carries the 24-byte protocol header (kind, seq, ack,
//! rpc id, body length). Large messages add a 20-byte descriptor so the
//! receiver can RDMA-Read the payload. Req-rsp mode (§VI-A) appends the
//! 16-byte tracing header — the sender's timestamp and a trace id — which
//! is what `trace_request` decodes.

use bytes::{BufMut, Bytes, BytesMut};

/// Message kind carried in the header flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// RPC request — expects a response with the same rpc id.
    Request,
    /// RPC response.
    Response,
    /// Fire-and-forget data message.
    OneWay,
    /// Standalone acknowledgment (no payload, no sequence slot).
    Ack,
    /// Deadlock-breaking no-op (§V-B); carries the current ACK number.
    Nop,
    /// Keepalive marker — never actually serialized (probes are zero-byte
    /// writes), present for completeness of the state machines.
    KeepAlive,
    /// Graceful connection shutdown.
    Close,
}

impl MsgKind {
    fn to_bits(self) -> u8 {
        match self {
            MsgKind::Request => 0,
            MsgKind::Response => 1,
            MsgKind::OneWay => 2,
            MsgKind::Ack => 3,
            MsgKind::Nop => 4,
            MsgKind::KeepAlive => 5,
            MsgKind::Close => 6,
        }
    }

    fn from_bits(b: u8) -> Option<MsgKind> {
        Some(match b {
            0 => MsgKind::Request,
            1 => MsgKind::Response,
            2 => MsgKind::OneWay,
            3 => MsgKind::Ack,
            4 => MsgKind::Nop,
            5 => MsgKind::KeepAlive,
            6 => MsgKind::Close,
            _ => return None,
        })
    }

    /// Does this kind occupy a slot in the seq-ack window?
    pub fn sequenced(self) -> bool {
        matches!(self, MsgKind::Request | MsgKind::Response | MsgKind::OneWay)
    }
}

/// Descriptor for a payload the receiver must fetch via RDMA Read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LargeDesc {
    pub addr: u64,
    pub rkey: u32,
}

/// Tracing fields (req-rsp mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHdr {
    /// Sender's clock at send time (T1 of §VI-A method I).
    pub t1_ns: u64,
    pub trace_id: u64,
}

/// Multiplexing fields: which logical channel this frame belongs to and
/// its position in that logical stream. Present only on frames sent
/// through a [`crate::mux::ChannelMux`]; the physical seq-ack machinery
/// below is oblivious to them — they survive QP eviction and
/// re-establishment precisely because they live above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MuxDesc {
    /// Logical channel id (stable across physical re-establishment).
    pub lcid: u64,
    /// Per-logical-channel sequence number (monotone for the lifetime of
    /// the logical channel, spanning any number of physical QPs).
    pub lseq: u64,
}

/// The decoded X-RDMA header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Header {
    pub kind: MsgKind,
    /// Sequence number within the channel (sequenced kinds only).
    pub seq: u32,
    /// Piggybacked cumulative ACK (Algorithm 1's ACKED).
    pub ack: u32,
    /// RPC correlation id.
    pub rpc_id: u32,
    /// Payload length (bytes beyond the header).
    pub body_len: u64,
    pub large: Option<LargeDesc>,
    pub trace: Option<TraceHdr>,
    pub mux: Option<MuxDesc>,
}

const MAGIC: u8 = 0xA7;
const VERSION: u8 = 1;
const FLAG_LARGE: u8 = 0x10;
const FLAG_TRACE: u8 = 0x20;
const FLAG_MUX: u8 = 0x40;

/// Base header length.
pub const BASE_LEN: usize = 24;
/// Additional bytes when a large-message descriptor is present.
pub const LARGE_LEN: usize = 12;
/// Additional bytes when tracing fields are present.
pub const TRACE_LEN: usize = 16;
/// Additional bytes when multiplexing fields are present.
pub const MUX_LEN: usize = 16;

impl Header {
    pub fn new(kind: MsgKind, seq: u32, ack: u32, rpc_id: u32, body_len: u64) -> Header {
        Header {
            kind,
            seq,
            ack,
            rpc_id,
            body_len,
            large: None,
            trace: None,
            mux: None,
        }
    }

    /// Encoded length of this header.
    pub fn encoded_len(&self) -> usize {
        BASE_LEN
            + self.large.map_or(0, |_| LARGE_LEN)
            + self.trace.map_or(0, |_| TRACE_LEN)
            + self.mux.map_or(0, |_| MUX_LEN)
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let mut flags = self.kind.to_bits();
        if self.large.is_some() {
            flags |= FLAG_LARGE;
        }
        if self.trace.is_some() {
            flags |= FLAG_TRACE;
        }
        if self.mux.is_some() {
            flags |= FLAG_MUX;
        }
        let mut b = BytesMut::with_capacity(self.encoded_len());
        b.put_u8(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(flags);
        b.put_u8(0); // reserved
        b.put_u32_le(self.seq);
        b.put_u32_le(self.ack);
        b.put_u32_le(self.rpc_id);
        b.put_u64_le(self.body_len);
        if let Some(d) = self.large {
            b.put_u64_le(d.addr);
            b.put_u32_le(d.rkey);
        }
        if let Some(t) = self.trace {
            b.put_u64_le(t.t1_ns);
            b.put_u64_le(t.trace_id);
        }
        if let Some(m) = self.mux {
            b.put_u64_le(m.lcid);
            b.put_u64_le(m.lseq);
        }
        b.freeze()
    }

    /// Parse a header from the front of `buf`. Returns the header and the
    /// number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(Header, usize)> {
        if buf.len() < BASE_LEN || buf[0] != MAGIC || buf[1] != VERSION {
            return None;
        }
        let flags = buf[2];
        let kind = MsgKind::from_bits(flags & 0x0F)?;
        let seq = u32::from_le_bytes(buf[4..8].try_into().ok()?);
        let ack = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        let rpc_id = u32::from_le_bytes(buf[12..16].try_into().ok()?);
        let body_len = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        let mut off = BASE_LEN;
        let large = if flags & FLAG_LARGE != 0 {
            if buf.len() < off + LARGE_LEN {
                return None;
            }
            let addr = u64::from_le_bytes(buf[off..off + 8].try_into().ok()?);
            let rkey = u32::from_le_bytes(buf[off + 8..off + 12].try_into().ok()?);
            off += LARGE_LEN;
            Some(LargeDesc { addr, rkey })
        } else {
            None
        };
        let trace = if flags & FLAG_TRACE != 0 {
            if buf.len() < off + TRACE_LEN {
                return None;
            }
            let t1_ns = u64::from_le_bytes(buf[off..off + 8].try_into().ok()?);
            let trace_id = u64::from_le_bytes(buf[off + 8..off + 16].try_into().ok()?);
            off += TRACE_LEN;
            Some(TraceHdr { t1_ns, trace_id })
        } else {
            None
        };
        let mux = if flags & FLAG_MUX != 0 {
            if buf.len() < off + MUX_LEN {
                return None;
            }
            let lcid = u64::from_le_bytes(buf[off..off + 8].try_into().ok()?);
            let lseq = u64::from_le_bytes(buf[off + 8..off + 16].try_into().ok()?);
            off += MUX_LEN;
            Some(MuxDesc { lcid, lseq })
        } else {
            None
        };
        Some((
            Header {
                kind,
                seq,
                ack,
                rpc_id,
                body_len,
                large,
                trace,
                mux,
            },
            off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(h: &Header) {
        let enc = h.encode();
        assert_eq!(enc.len(), h.encoded_len());
        let (dec, used) = Header::decode(&enc).expect("decode");
        assert_eq!(&dec, h);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn base_roundtrip() {
        roundtrip(&Header::new(MsgKind::Request, 7, 3, 99, 1024));
        roundtrip(&Header::new(MsgKind::Ack, 0, 55, 0, 0));
        roundtrip(&Header::new(MsgKind::Nop, 0, 12, 0, 0));
    }

    #[test]
    fn large_and_trace_roundtrip() {
        let mut h = Header::new(MsgKind::Response, 1, 2, 3, 1 << 20);
        h.large = Some(LargeDesc {
            addr: 0xDEAD_BEEF_0000,
            rkey: 77,
        });
        roundtrip(&h);
        h.trace = Some(TraceHdr {
            t1_ns: 123_456_789,
            trace_id: 42,
        });
        roundtrip(&h);
        assert_eq!(h.encoded_len(), BASE_LEN + LARGE_LEN + TRACE_LEN);
    }

    #[test]
    fn mux_roundtrip() {
        let mut h = Header::new(MsgKind::OneWay, 9, 4, 0, 256);
        h.mux = Some(MuxDesc {
            lcid: 0xABCD_0123,
            lseq: 1 << 40,
        });
        roundtrip(&h);
        assert_eq!(h.encoded_len(), BASE_LEN + MUX_LEN);
        // All three extensions stack in a fixed order.
        h.large = Some(LargeDesc { addr: 64, rkey: 5 });
        h.trace = Some(TraceHdr {
            t1_ns: 1,
            trace_id: 2,
        });
        roundtrip(&h);
        assert_eq!(h.encoded_len(), BASE_LEN + LARGE_LEN + TRACE_LEN + MUX_LEN);
        // Truncated mux descriptor rejected.
        let enc = h.encode();
        assert!(Header::decode(&enc[..enc.len() - 4]).is_none());
        // A non-mux header stays byte-identical to the pre-mux encoding.
        let plain = Header::new(MsgKind::OneWay, 9, 4, 0, 256);
        assert_eq!(plain.encoded_len(), BASE_LEN);
        assert_eq!(plain.encode()[2] & FLAG_MUX, 0);
    }

    #[test]
    fn sizes_match_paper_scale() {
        // Bare header is small enough that bare-data mode stays close to
        // raw verbs; trace adds ~16 B (the ~200 ns / 2–4 % of §VII-A).
        assert_eq!(BASE_LEN, 24);
        assert_eq!(TRACE_LEN, 16);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Header::decode(&[]).is_none());
        assert!(Header::decode(&[0; 24]).is_none());
        let mut enc = Header::new(MsgKind::Request, 1, 1, 1, 1).encode().to_vec();
        enc[1] = 9; // bad version
        assert!(Header::decode(&enc).is_none());
        // Truncated large descriptor.
        let mut h = Header::new(MsgKind::Request, 1, 1, 1, 1);
        h.large = Some(LargeDesc { addr: 1, rkey: 2 });
        let enc = h.encode();
        assert!(Header::decode(&enc[..BASE_LEN + 4]).is_none());
    }

    #[test]
    fn kind_bits_total() {
        for k in [
            MsgKind::Request,
            MsgKind::Response,
            MsgKind::OneWay,
            MsgKind::Ack,
            MsgKind::Nop,
            MsgKind::KeepAlive,
            MsgKind::Close,
        ] {
            assert_eq!(MsgKind::from_bits(k.to_bits()), Some(k));
        }
        assert_eq!(MsgKind::from_bits(15), None);
        assert!(MsgKind::Request.sequenced());
        assert!(!MsgKind::Ack.sequenced());
        assert!(!MsgKind::Nop.sequenced());
    }
}
