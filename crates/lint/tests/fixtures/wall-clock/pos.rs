use std::time::Instant;

pub fn elapsed_ns() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
