//! # xrdma-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the X-RDMA reproduction. Everything above
//! it — the Clos fabric, the simulated RNIC, the X-RDMA middleware, the
//! application models — runs inside a [`World`]: a single-threaded,
//! deterministic discrete-event simulator with a virtual nanosecond clock.
//!
//! Design goals (see DESIGN.md §3):
//!
//! * **Determinism.** Same seed ⇒ bit-identical event order and results.
//!   Ties in the event heap are broken by insertion sequence number, and all
//!   randomness flows through [`SimRng`] streams forked from a root seed.
//! * **Single-threaded worlds, parallel sweeps.** A `World` is deliberately
//!   `!Send`/`!Sync` (it is built from `Rc`/`Cell`/`RefCell`); the benchmark
//!   harness runs many independent worlds on separate rayon workers.
//! * **Cheap virtual time.** [`Time`] and [`Dur`] are thin `u64` nanosecond
//!   wrappers; the hot path (schedule/pop) does no allocation beyond the
//!   boxed callback.
//!
//! The crate also provides the measurement toolkit shared by every
//! experiment: log-linear latency [`stats::Histogram`]s, bucketed
//! [`stats::TimeSeries`], and monotonic [`stats::Counter`]s.

pub mod cpu;
pub mod rng;
pub mod stats;
pub mod time;
pub mod world;

pub use cpu::CpuThread;
pub use rng::SimRng;
pub use time::{Dur, Time};
pub use world::{EventId, World};

/// Runtime protocol-invariant check (DESIGN.md "Determinism contract").
///
/// Expands to an `assert!` that is compiled in when the invoking crate's
/// `debug_invariants` feature is enabled, and always in that crate's own
/// unit tests (`cfg(test)`), so every checker is exercised by the regular
/// test suite. In plain release builds the check costs nothing.
///
/// The condition must be side-effect free: with the feature off it is
/// never evaluated, and an invariant whose *evaluation* matters would make
/// checked and unchecked builds diverge — the exact bug class this exists
/// to catch.
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {
        if cfg!(any(test, feature = "debug_invariants")) {
            assert!($($arg)*);
        }
    };
}
