//! The X-RDMA middleware on `Send` lane state (DESIGN.md §3.15): the
//! glue that runs the ported per-host stack — channel seq-ack windows,
//! keepalive, CM handshake, QP/CQ/DCQCN ([`xrdma_rnic::lane`]) and the
//! host NIC endpoint ([`xrdma_fabric::lane`]) — inside
//! [`xrdma_sim::shard::ShardWorld`], one lane per host, on real worker
//! threads.
//!
//! # Porting rules (what moved where)
//!
//! * The serial stack reaches everything through `Rc<World>`; here a
//!   host's whole stack is one owned [`HostLane`] value, and *every*
//!   cross-object reference is a handle index: channel `i` drives QP
//!   `i` (same index by construction), a peer is `(peer_host,
//!   peer_chan)`, callbacks are plain `fn` pointers in [`HostHooks`].
//! * All cross-host interactions ride the mailbox protocol: packet
//!   delivery after NIC serialization (two-hop propagation = the
//!   lookahead floor), the CM handshake (out-of-band, as TCP-based CM
//!   is in production), and keepalive probes (which are ordinary
//!   packets). Nothing else crosses a lane boundary.
//! * Every timer — pacing wakeups, go-back-N retransmission (lazily
//!   reprogrammed), DCQCN ticks, keepalive — is armed through the
//!   lane's own calendar at points that execute identically for any
//!   shard count, preserving the seq-allocation obligation. Same-seed
//!   digests, telemetry JSONL and derived span JSONL are therefore
//!   byte-identical across `shards ∈ {1, 2, 4, 8}`.
//!
//! The reference workload, [`grouped_incast`], is the scaling scenario
//! `simperf` measures: an N-node cluster partitioned into racks of
//! `group` hosts, each rack running a many-to-one incast into its sink
//! (deep enough that receiver-side ECN and DCQCN engage), plus a
//! cross-rack heartbeat mesh so mailbox traffic crosses shard
//! boundaries at every shard count.

use std::collections::VecDeque;

use xrdma_fabric::lane::{HostNicLane, LanePkt, NicLaneConfig};
use xrdma_rnic::lane::{LaneBth, LaneBthKind, Pump, RnicLane, RnicLaneConfig};
use xrdma_sim::shard::{Lane, ShardConfig, ShardWorld};
use xrdma_sim::{Dur, Time};

use crate::seqack::{RxAccept, RxWindow, TxWindow};

/// The lane world running the full middleware stack.
pub type HostWorld = ShardWorld<HostLane>;
/// Shorthand for glue signatures.
type L = Lane<HostLane>;

/// Application-header bytes per middleware message on the wire.
pub const MSG_HDR_BYTES: u32 = 32;

/// Middleware message kinds: sequenced data (request/reply RPC halves)
/// and unsequenced control (keepalive, standalone window ack).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    Request,
    Reply,
    Probe,
    ProbeAck,
    WindowAck,
}

/// One middleware message. Plain `Copy` data — payloads are modelled by
/// size, exactly like the serial stack's size-only request API.
#[derive(Clone, Copy, Debug)]
pub struct LaneMsg {
    pub kind: MsgKind,
    /// Channel seq-ack sequence number (Request/Reply only).
    pub ch_seq: u32,
    /// Piggybacked cumulative window ACK (every message carries one).
    pub ack: u32,
    pub rpc: u64,
    pub size: u32,
}

/// Channel lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChanState {
    /// CM handshake in flight.
    Connecting,
    Up,
    /// Keepalive declared the peer dead.
    Dead,
}

/// One middleware channel on lane state: the seq-ack window pair
/// (Algorithm 1), the pending-send queue, and keepalive bookkeeping.
/// Channel `i` owns QP `i` of the same host — the handle-index rule.
#[derive(Debug)]
pub struct ChannelLane {
    pub peer_host: u32,
    pub peer_chan: u32,
    /// Application tag (which traffic class this channel carries).
    pub role: u32,
    pub state: ChanState,
    tx: TxWindow,
    rx: RxWindow,
    /// Messages accepted but waiting for a window slot.
    pending: VecDeque<(MsgKind, u64, u32)>,
    next_rpc: u64,
    pub rpcs_out: u32,
    // --- keepalive ---
    last_rx_ns: u64,
    probe_outstanding: bool,
    probe_misses: u32,
    pub probes_sent: u64,
    // --- stats ---
    pub msgs_sent: u64,
    pub msgs_recv: u64,
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub window_stalls: u64,
}

impl ChannelLane {
    fn new(peer_host: u32, role: u32, window: u32) -> ChannelLane {
        ChannelLane {
            peer_host,
            peer_chan: u32::MAX,
            role,
            state: ChanState::Connecting,
            tx: TxWindow::new(window),
            rx: RxWindow::new(window),
            pending: VecDeque::new(),
            next_rpc: 0,
            rpcs_out: 0,
            last_rx_ns: 0,
            probe_outstanding: false,
            probe_misses: 0,
            probes_sent: 0,
            msgs_sent: 0,
            msgs_recv: 0,
            bytes_sent: 0,
            bytes_recv: 0,
            window_stalls: 0,
        }
    }

    pub fn tx_in_flight(&self) -> u32 {
        self.tx.in_flight()
    }
}

/// Per-host application hooks: plain `fn` pointers (no captures, no
/// allocation, trivially `Send`) — the lane port of the serial stack's
/// boxed channel callbacks.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostHooks {
    pub on_request: Option<fn(&mut L, u32, LaneMsg)>,
    pub on_reply: Option<fn(&mut L, u32, LaneMsg)>,
    pub on_connected: Option<fn(&mut L, u32)>,
    pub on_peer_dead: Option<fn(&mut L, u32)>,
}

/// Host-stack tunables.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    pub nic: NicLaneConfig,
    pub rnic: RnicLaneConfig,
    /// Seq-ack window depth per channel.
    pub window: u32,
    /// Keepalive probe interval.
    pub probe_interval_ns: u64,
    /// Unanswered probes before the peer is declared dead.
    pub dead_after: u32,
    /// Standalone window-ACK threshold (§V-B: ack after N silent rx).
    pub ack_after: u32,
    /// Out-of-band CM handshake latency (TCP-based in production).
    pub cm_delay_ns: u64,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            nic: NicLaneConfig::default(),
            rnic: RnicLaneConfig::default(),
            window: 64,
            probe_interval_ns: 100_000,
            dead_after: 3,
            ack_after: 8,
            cm_delay_ns: 100_000,
        }
    }
}

/// Deterministic app-level counters, part of the digest.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppCounters {
    pub rpcs_started: u64,
    pub rpcs_done: u64,
    pub requests_served: u64,
    pub rpc_bytes: u64,
}

/// The whole middleware stack of one host as owned lane state. Named
/// `*Lane` so the S1 `non-send-shard-state` lint walks it as a shard
/// root: no `Rc`, no `RefCell`, no raw pointers anywhere inside.
pub struct HostLane {
    pub host: u32,
    pub cfg: HostConfig,
    pub nic: HostNicLane<LaneBth<LaneMsg>>,
    pub rnic: RnicLane<LaneMsg>,
    pub chans: Vec<ChannelLane>,
    pub hooks: HostHooks,
    pub app: AppCounters,
    /// Workload knobs readable from capture-free `fn` hooks.
    pub workload_rpc_size: u32,
    pub workload_heartbeat_ns: u64,
    /// Reused CQE drain buffer (no per-poll allocation).
    cqe_scratch: Vec<(u32, u64)>,
}

impl HostLane {
    pub fn new(host: u32, cfg: HostConfig) -> HostLane {
        HostLane {
            host,
            cfg,
            nic: HostNicLane::new(cfg.nic),
            rnic: RnicLane::new(cfg.rnic),
            chans: Vec::new(),
            hooks: HostHooks::default(),
            app: AppCounters::default(),
            workload_rpc_size: 4096,
            workload_heartbeat_ns: 0,
            cqe_scratch: Vec::new(),
        }
    }

    pub fn chan(&mut self, chan: u32) -> &mut ChannelLane {
        &mut self.chans[chan as usize]
    }

    /// Allocate a channel + its QP (same index) toward `peer_host`.
    fn alloc_channel(&mut self, peer_host: u32, role: u32) -> u32 {
        let qpn = self.rnic.create_qp();
        let chan = self.chans.len() as u32;
        debug_assert_eq!(qpn, chan, "channel i drives QP i by construction");
        self.chans
            .push(ChannelLane::new(peer_host, role, self.cfg.window));
        chan
    }
}

/// Deterministic one-line summary per host: everything observable about
/// the stack, so `ShardWorld::digest` compares the *entire* middleware
/// state across shard counts.
impl std::fmt::Debug for HostLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "h{} {:?} app{{start={} done={} served={} bytes={}}} stale={}",
            self.host,
            self.nic,
            self.app.rpcs_started,
            self.app.rpcs_done,
            self.app.requests_served,
            self.app.rpc_bytes,
            self.rnic.stale_pkts
        )?;
        for (i, ch) in self.chans.iter().enumerate() {
            let qp = &self.rnic.qps[i];
            write!(
                f,
                " | ch{}->h{}.{} {:?} tx={}/{}B rx={}/{}B stall={} probe={} miss={} \
                 qp{{f={}F/{}F dup={} retx={} cnp={} rate={:.3}}}",
                i,
                ch.peer_host,
                ch.peer_chan,
                ch.state,
                ch.msgs_sent,
                ch.bytes_sent,
                ch.msgs_recv,
                ch.bytes_recv,
                ch.window_stalls,
                ch.probes_sent,
                ch.probe_misses,
                qp.tx_frags,
                qp.rx_frags,
                qp.dup_frags,
                qp.retransmissions,
                qp.cnps_rx,
                qp.rp.rate_gbps(),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Connection management: out-of-band handshake over the mailbox protocol
// ---------------------------------------------------------------------------

/// Start a connection from this lane to `server`: allocates the local
/// channel (returned immediately, state `Connecting`) and launches the
/// CM handshake. `hooks.on_connected` fires when it reaches `Up`.
pub fn connect(l: &mut L, server: u32, role: u32) -> u32 {
    let me = l.id();
    let chan = l.state.alloc_channel(server, role);
    // Connection token: unique per (host, channel) incarnation; both QP
    // endpoints adopt it and stale packets are rejected against it.
    let token = (u64::from(me) << 20) | u64::from(chan) | (1 << 62);
    let delay = Dur::nanos(l.state.cfg.cm_delay_ns);
    l.send_to(server, delay, move |srv| {
        cm_accept(srv, me, chan, token, role);
    });
    chan
}

/// Server side of the handshake: allocate the passive channel + QP,
/// move it to RTS, reply with our handle.
fn cm_accept(srv: &mut L, client_host: u32, client_chan: u32, token: u64, role: u32) {
    let chan = srv.state.alloc_channel(client_host, role);
    let s = &mut srv.state;
    s.chans[chan as usize].peer_chan = client_chan;
    s.chans[chan as usize].state = ChanState::Up;
    s.rnic.qp(chan).connect(client_host, client_chan, token);
    channel_up(srv, chan);
    let delay = Dur::nanos(srv.state.cfg.cm_delay_ns);
    srv.send_to(client_host, delay, move |cl| {
        cm_complete(cl, client_chan, chan, token);
    });
}

/// Client side completion: bind the peer handle, RTS, surface `Up`.
fn cm_complete(cl: &mut L, chan: u32, server_chan: u32, token: u64) {
    let s = &mut cl.state;
    let peer_host = s.chans[chan as usize].peer_host;
    s.chans[chan as usize].peer_chan = server_chan;
    s.chans[chan as usize].state = ChanState::Up;
    s.rnic.qp(chan).connect(peer_host, server_chan, token);
    channel_up(cl, chan);
    let hooks = cl.state.hooks;
    if let Some(f) = hooks.on_connected {
        f(cl, chan);
    }
}

/// Shared post-`Up` setup: the keepalive tick starts on both ends.
fn channel_up(l: &mut L, chan: u32) {
    let now = l.now().nanos();
    l.state.chans[chan as usize].last_rx_ns = now;
    let period = Dur::nanos(l.state.cfg.probe_interval_ns);
    l.start_periodic(period, move |l| keepalive_tick(l, chan));
}

// ---------------------------------------------------------------------------
// Channel layer: seq-ack windows, RPC surface, keepalive
// ---------------------------------------------------------------------------

/// Issue one RPC request of `size` payload bytes. Returns the rpc id.
/// Queued behind the window when it is closed (flow control, §V-C).
pub fn channel_request(l: &mut L, chan: u32, size: u32) -> u64 {
    let s = &mut l.state;
    let ch = &mut s.chans[chan as usize];
    let rpc = ch.next_rpc;
    ch.next_rpc += 1;
    ch.rpcs_out += 1;
    ch.pending.push_back((MsgKind::Request, rpc, size));
    s.app.rpcs_started += 1;
    pump_channel(l, chan);
    rpc
}

/// Serve an RPC: send the reply half for `rpc`.
pub fn channel_reply(l: &mut L, chan: u32, rpc: u64, size: u32) {
    let s = &mut l.state;
    s.chans[chan as usize]
        .pending
        .push_back((MsgKind::Reply, rpc, size));
    s.app.requests_served += 1;
    pump_channel(l, chan);
}

/// Move pending messages into the QP while the seq-ack window is open.
fn pump_channel(l: &mut L, chan: u32) {
    let s = &mut l.state;
    let ch = &mut s.chans[chan as usize];
    if ch.state != ChanState::Up {
        return;
    }
    let mut posted = false;
    while !ch.pending.is_empty() {
        if !ch.tx.can_send() {
            ch.window_stalls += 1;
            break;
        }
        let (kind, rpc, size) = ch.pending.pop_front().expect("non-empty");
        let ch_seq = ch.tx.next_seq();
        let ack = ch.rx.take_ack();
        let msg = LaneMsg {
            kind,
            ch_seq,
            ack,
            rpc,
            size,
        };
        ch.msgs_sent += 1;
        ch.bytes_sent += u64::from(size);
        s.rnic.qp(chan).post_send(rpc, size + MSG_HDR_BYTES, msg);
        posted = true;
    }
    if posted {
        qp_pump(l, chan);
    }
}

/// Send an unsequenced control message (probe / probe-ack / standalone
/// window ack). Control bypasses the data window so flow control can
/// never deadlock the ack path — the NOP-slot idea of Algorithm 1.
fn send_ctrl(l: &mut L, chan: u32, kind: MsgKind) {
    let s = &mut l.state;
    let ch = &mut s.chans[chan as usize];
    if ch.state != ChanState::Up {
        return;
    }
    let ack = ch.rx.take_ack();
    let msg = LaneMsg {
        kind,
        ch_seq: 0,
        ack,
        rpc: 0,
        size: 0,
    };
    s.rnic.qp(chan).post_send(0, MSG_HDR_BYTES, msg);
    qp_pump(l, chan);
}

/// Keepalive (§V-A): probe after a silent interval; unanswered probes
/// accumulate; too many and the peer is declared dead and the channel
/// stops pumping immediately.
fn keepalive_tick(l: &mut L, chan: u32) {
    let now = l.now().nanos();
    let cfg = l.state.cfg;
    let ch = &mut l.state.chans[chan as usize];
    if ch.state != ChanState::Up {
        return;
    }
    if now.saturating_sub(ch.last_rx_ns) < cfg.probe_interval_ns {
        return; // traffic within the interval: no probe needed
    }
    if ch.probe_outstanding {
        ch.probe_misses += 1;
        if ch.probe_misses >= cfg.dead_after {
            ch.state = ChanState::Dead;
            ch.pending.clear();
            let misses = ch.probe_misses;
            l.emit("peer_dead", u64::from(chan), u64::from(misses));
            let hooks = l.state.hooks;
            if let Some(f) = hooks.on_peer_dead {
                f(l, chan);
            }
            return;
        }
    }
    let ch = &mut l.state.chans[chan as usize];
    ch.probe_outstanding = true;
    ch.probes_sent += 1;
    send_ctrl(l, chan, MsgKind::Probe);
}

/// An in-order middleware message reached this host's channel.
fn deliver_msg(l: &mut L, chan: u32, msg: LaneMsg) {
    let now = l.now().nanos();
    let ch = &mut l.state.chans[chan as usize];
    if ch.state != ChanState::Up {
        return;
    }
    ch.last_rx_ns = now;
    ch.probe_outstanding = false;
    ch.probe_misses = 0;
    // Piggybacked window ack first: it may reopen the window.
    let newly_acked = ch.tx.on_ack(msg.ack).count();
    let mut deliverable = false;
    match msg.kind {
        MsgKind::Request | MsgKind::Reply => {
            ch.msgs_recv += 1;
            ch.bytes_recv += u64::from(msg.size);
            if ch.rx.on_arrival(msg.ch_seq) == RxAccept::Fresh {
                // QP delivery is in-order (go-back-N), so completion is
                // immediate and releases exactly this sequence.
                let released = ch.rx.on_complete(msg.ch_seq);
                debug_assert_eq!(released, vec![msg.ch_seq]);
                deliverable = true;
            }
        }
        MsgKind::Probe => {
            send_ctrl(l, chan, MsgKind::ProbeAck);
            after_rx(l, chan, newly_acked);
            return;
        }
        MsgKind::ProbeAck | MsgKind::WindowAck => {
            after_rx(l, chan, newly_acked);
            return;
        }
    }
    if deliverable {
        let hooks = l.state.hooks;
        match msg.kind {
            MsgKind::Request => {
                if let Some(f) = hooks.on_request {
                    f(l, chan, msg);
                }
            }
            MsgKind::Reply => {
                let s = &mut l.state;
                let ch = &mut s.chans[chan as usize];
                ch.rpcs_out = ch.rpcs_out.saturating_sub(1);
                s.app.rpcs_done += 1;
                s.app.rpc_bytes += u64::from(msg.size);
                if let Some(f) = hooks.on_reply {
                    f(l, chan, msg);
                }
            }
            _ => unreachable!("ctrl handled above"),
        }
    }
    after_rx(l, chan, newly_acked);
}

/// Post-delivery bookkeeping: reopened windows pump, and silence-bound
/// acks go out standalone (§V-B).
fn after_rx(l: &mut L, chan: u32, newly_acked: usize) {
    if newly_acked > 0 {
        pump_channel(l, chan);
    }
    let cfg = l.state.cfg;
    let ch = &mut l.state.chans[chan as usize];
    if ch.state == ChanState::Up
        && ch.pending.is_empty()
        && ch.rx.needs_standalone_ack(cfg.ack_after)
    {
        send_ctrl(l, chan, MsgKind::WindowAck);
    }
}

// ---------------------------------------------------------------------------
// QP ↔ NIC plumbing: pacing, retransmission, DCQCN, delivery
// ---------------------------------------------------------------------------

/// Drain the QP's send side into the NIC, arming pacing and retx
/// timers as needed. Identical call points for every shard count.
fn qp_pump(l: &mut L, qpn: u32) {
    let me = l.id();
    loop {
        let now = l.now().nanos();
        let verdict = l.state.rnic.qp(qpn).pump(now);
        match verdict {
            Pump::Tx(mut bth) => {
                bth.src_host = me;
                let dst = l.state.chans[qpn as usize].peer_host;
                let bytes = bth.wire_bytes();
                nic_send(
                    l,
                    LanePkt {
                        src: me,
                        dst,
                        bytes,
                        ecn: false,
                        body: bth,
                    },
                );
            }
            Pump::WaitUntil(t) => {
                let qp = l.state.rnic.qp(qpn);
                if !qp.pacing_armed {
                    qp.pacing_armed = true;
                    l.schedule_at(Time(t), move |l| {
                        l.state.rnic.qp(qpn).pacing_armed = false;
                        qp_pump(l, qpn);
                    });
                }
                break;
            }
            Pump::Idle => break,
        }
    }
    // Arm the (lazy) retransmission timer while anything is unacked.
    let now = l.now().nanos();
    let timeout = l.state.cfg.rnic.retx_timeout_ns;
    let qp = l.state.rnic.qp(qpn);
    if qp.in_flight() > 0 && !qp.retx_armed {
        qp.retx_armed = true;
        qp.retx_deadline_ns = now + timeout;
        l.schedule_at(Time(now + timeout), move |l| retx_fire(l, qpn));
    }
}

/// Retransmission timer: lazily reprogrammed — ack progress pushes the
/// deadline, a true expiry rewinds to the oldest unacked PSN.
fn retx_fire(l: &mut L, qpn: u32) {
    let now = l.now().nanos();
    let timeout = l.state.cfg.rnic.retx_timeout_ns;
    let qp = l.state.rnic.qp(qpn);
    qp.retx_armed = false;
    if let Some(deadline) = qp.on_retx_timeout(now, timeout) {
        qp.retx_armed = true;
        l.schedule_at(Time(deadline), move |l| retx_fire(l, qpn));
        qp_pump(l, qpn);
    }
}

/// DCQCN tick: armed per congested QP on the first CNP, self-disarms
/// once the reaction point recovers to line rate (the serial engine's
/// congested-set policy).
fn dcqcn_tick(l: &mut L, qpn: u32) {
    let now = l.now().nanos();
    let line = l.state.cfg.rnic.dcqcn.line_rate_gbps;
    let period = l.state.cfg.rnic.dcqcn.alpha_timer;
    let qp = l.state.rnic.qp(qpn);
    qp.rp.on_timer(Time(now));
    if qp.rp.recovered(line) {
        qp.dcqcn_armed = false;
    } else {
        l.schedule_in(period, move |l| dcqcn_tick(l, qpn));
    }
    qp_pump(l, qpn);
}

/// Hand a packet to the host NIC egress queue.
fn nic_send(l: &mut L, pkt: LanePkt<LaneBth<LaneMsg>>) {
    if let Some(ser_ns) = l.state.nic.egress_enqueue(pkt) {
        l.schedule_in(Dur::nanos(ser_ns), nic_tx_done);
    }
}

/// Serialization completed: launch the front packet cross-lane (two
/// propagation hops — exactly the lookahead floor) and chain the next.
fn nic_tx_done(l: &mut L) {
    let (launched, next) = l.state.nic.tx_done();
    if let Some(pkt) = launched {
        let delay = Dur::nanos(l.state.nic.cross_delay_ns());
        let dst = pkt.dst;
        l.send_to(dst, delay, move |l| nic_rx(l, pkt));
    }
    if let Some(ser_ns) = next {
        l.schedule_in(Dur::nanos(ser_ns), nic_tx_done);
    }
}

/// Arrival at the destination host: admit into the downlink queue
/// (receiver-side congestion; may ECN-mark) and deliver when drained.
fn nic_rx(l: &mut L, mut pkt: LanePkt<LaneBth<LaneMsg>>) {
    let now = l.now().nanos();
    let adm = l.state.nic.rx_admit(now, pkt.bytes);
    pkt.ecn |= adm.ecn;
    l.schedule_at(Time(adm.deliver_at_ns), move |l| rnic_rx(l, pkt));
}

/// The RNIC receive path: validate, then dispatch by packet kind.
fn rnic_rx(l: &mut L, pkt: LanePkt<LaneBth<LaneMsg>>) {
    let now = l.now().nanos();
    let s = &mut l.state;
    let Some(qpn) = s.rnic.validate(&pkt.body) else {
        return;
    };
    let dcqcn = s.cfg.rnic.dcqcn;
    match pkt.body.kind {
        LaneBthKind::Data { psn, last, msg, .. } => {
            let rx = s.rnic.qp(qpn).on_data(now, psn, last, msg, pkt.ecn, &dcqcn);
            if let Some(ack) = rx.ack {
                send_bth(l, qpn, LaneBthKind::Ack { psn: ack });
            }
            if let Some(expected) = rx.nak {
                send_bth(l, qpn, LaneBthKind::Nak { expected });
            }
            if rx.cnp {
                send_bth(l, qpn, LaneBthKind::Cnp);
            }
            if let Some(m) = rx.deliver {
                deliver_msg(l, qpn, m);
            }
        }
        LaneBthKind::Ack { psn } => {
            let timeout = s.cfg.rnic.retx_timeout_ns;
            // Split-borrow the QP table and CQ for completion pushes.
            let rnic = &mut s.rnic;
            let (qps, cq) = (&mut rnic.qps, &mut rnic.cq);
            qps[qpn as usize].on_ack(now, psn, timeout, cq);
            // Drain completions (batch statistics; the scratch buffer is
            // reused so the receive path does not allocate).
            let mut scratch = std::mem::take(&mut s.cqe_scratch);
            scratch.clear();
            s.rnic.cq.drain(&mut scratch);
            s.cqe_scratch = scratch;
            qp_pump(l, qpn);
        }
        LaneBthKind::Nak { expected } => {
            s.rnic.qp(qpn).on_nak(expected);
            qp_pump(l, qpn);
        }
        LaneBthKind::Cnp => {
            let qp = s.rnic.qp(qpn);
            qp.on_cnp(now);
            if !qp.dcqcn_armed {
                qp.dcqcn_armed = true;
                l.schedule_in(dcqcn.alpha_timer, move |l| dcqcn_tick(l, qpn));
            }
        }
    }
}

/// Emit a bare transport packet (ACK/NAK/CNP) back to the QP's peer.
fn send_bth(l: &mut L, qpn: u32, kind: LaneBthKind<LaneMsg>) {
    let me = l.id();
    let qp = l.state.rnic.qp(qpn);
    let bth = LaneBth {
        src_host: me,
        src_qpn: qpn,
        dst_qpn: qp.peer_qpn,
        token: qp.token,
        kind,
    };
    let dst = qp.peer_host;
    let bytes = bth.wire_bytes();
    nic_send(
        l,
        LanePkt {
            src: me,
            dst,
            bytes,
            ecn: false,
            body: bth,
        },
    );
}

// ---------------------------------------------------------------------------
// Reference workload: grouped incast with a cross-rack heartbeat mesh
// ---------------------------------------------------------------------------

/// Channel roles of the reference workload.
pub const ROLE_BULK: u32 = 0;
pub const ROLE_HEARTBEAT: u32 = 1;

/// Requests each bulk client keeps in flight (deep enough that a rack's
/// sink sees a standing incast and ECN/DCQCN engage).
pub const BULK_PIPELINE: u32 = 8;

/// Workload shape for [`grouped_incast`].
#[derive(Clone, Copy, Debug)]
pub struct IncastSpec {
    /// Total hosts; must be a multiple of `group`.
    pub nodes: usize,
    /// Rack size: host `g*group` is rack `g`'s sink, the rest are
    /// clients blasting it.
    pub group: usize,
    pub shards: usize,
    pub seed: u64,
    /// Bulk request payload bytes.
    pub rpc_size: u32,
    /// Cross-rack heartbeat RPC interval (0 disables the mesh).
    pub heartbeat_ns: u64,
    /// NIC fault knob: drop every Nth egress packet on every host
    /// (0 = lossless) — the chaos battery's deterministic loss source.
    pub drop_every: u64,
}

impl IncastSpec {
    /// The committed simperf scenario: racks of 16, 48 KiB requests,
    /// a 200 µs cross-rack heartbeat mesh, lossless NICs.
    pub fn full(nodes: usize, shards: usize, seed: u64) -> IncastSpec {
        IncastSpec {
            nodes,
            group: 16,
            shards,
            seed,
            rpc_size: 48 * 1024,
            heartbeat_ns: 200_000,
            drop_every: 0,
        }
    }
}

fn on_connected(l: &mut L, chan: u32) {
    match l.state.chans[chan as usize].role {
        ROLE_BULK => {
            for _ in 0..BULK_PIPELINE {
                let size = bulk_size(l);
                let rpc = channel_request(l, chan, size);
                emit_tx(l, chan, rpc);
            }
        }
        ROLE_HEARTBEAT => schedule_heartbeat(l, chan),
        _ => unreachable!("unknown role"),
    }
}

fn on_request(l: &mut L, chan: u32, msg: LaneMsg) {
    // Sinks serve every request with a small reply, like the serial
    // incast's 128-byte responses.
    channel_reply(l, chan, msg.rpc, 128);
}

fn on_reply(l: &mut L, chan: u32, msg: LaneMsg) {
    emit_done(l, chan, msg.rpc);
    match l.state.chans[chan as usize].role {
        ROLE_BULK => {
            // Closed loop: keep the pipeline full.
            let size = bulk_size(l);
            let rpc = channel_request(l, chan, size);
            emit_tx(l, chan, rpc);
        }
        ROLE_HEARTBEAT => schedule_heartbeat(l, chan),
        _ => unreachable!("unknown role"),
    }
}

fn schedule_heartbeat(l: &mut L, chan: u32) {
    let interval = l.state.workload_heartbeat_ns.max(1);
    let jitter = l.rng.next_below(interval / 4 + 1);
    l.schedule_in(Dur::nanos(interval + jitter), move |l| {
        if l.state.chans[chan as usize].state == ChanState::Up {
            let rpc = channel_request(l, chan, 128);
            emit_tx(l, chan, rpc);
        }
    });
}

fn bulk_size(l: &mut L) -> u32 {
    // Mild deterministic size spread around the nominal RPC size.
    let nominal = l.state.workload_rpc_size;
    nominal - (nominal / 8) + (l.rng.next_below(u64::from(nominal / 4) + 1) as u32)
}

/// Globally unique RPC key for telemetry: (host, chan, rpc).
fn rpc_key(host: u32, chan: u32, rpc: u64) -> u64 {
    (u64::from(host) << 40) | (u64::from(chan) << 32) | (rpc & 0xffff_ffff)
}

fn emit_tx(l: &mut L, chan: u32, rpc: u64) {
    let key = rpc_key(l.id(), chan, rpc);
    l.emit("tx", key, 0);
}

fn emit_done(l: &mut L, chan: u32, rpc: u64) {
    let key = rpc_key(l.id(), chan, rpc);
    l.emit("done", key, 0);
}

/// Build the reference grouped-incast world. Seeds the CM connects
/// only; call `run_until` to execute.
pub fn grouped_incast(spec: IncastSpec) -> HostWorld {
    assert!(spec.group >= 2, "a rack needs a sink and a client");
    assert!(
        spec.nodes.is_multiple_of(spec.group),
        "nodes must be a multiple of the rack size"
    );
    let racks = spec.nodes / spec.group;
    let mut cfg = HostConfig::default();
    cfg.nic.drop_every = spec.drop_every;
    let hooks = HostHooks {
        on_request: Some(on_request),
        on_reply: Some(on_reply),
        on_connected: Some(on_connected),
        on_peer_dead: None,
    };
    let states = (0..spec.nodes)
        .map(|h| {
            let mut s = HostLane::new(h as u32, cfg);
            s.hooks = hooks;
            s.workload_rpc_size = spec.rpc_size;
            s.workload_heartbeat_ns = spec.heartbeat_ns;
            s
        })
        .collect();
    let shard_cfg = ShardConfig {
        shards: spec.shards,
        lookahead: Dur::nanos(2 * xrdma_sim::shard::HOP_NS),
    };
    let mut w = ShardWorld::new(shard_cfg, spec.seed, states);
    for h in 0..spec.nodes {
        let rack = h / spec.group;
        let sink = (rack * spec.group) as u32;
        if h as u32 == sink {
            continue; // sinks only listen
        }
        let lane = w.lane_mut(h);
        // Stagger connects so CM requests don't pulse in one instant.
        let jitter = lane.rng.next_below(20_000);
        lane.schedule_at(Time(1 + jitter), move |l| {
            connect(l, sink, ROLE_BULK);
        });
        if spec.heartbeat_ns > 0 && racks > 1 {
            let next_sink = (((rack + 1) % racks) * spec.group) as u32;
            let jitter = lane.rng.next_below(40_000);
            lane.schedule_at(Time(2 + jitter), move |l| {
                connect(l, next_sink, ROLE_HEARTBEAT);
            });
        }
    }
    w
}

/// Derived per-RPC span log: one line per completed RPC, matched from
/// the `tx`/`done` telemetry records, ordered by completion. Stands in
/// for the serial stack's span JSONL on the lane engine — and is
/// byte-identical across shard counts because the record log is.
pub fn spans_jsonl(w: &HostWorld) -> String {
    use std::collections::HashMap;
    let mut start: HashMap<u64, u64> = HashMap::new();
    let mut out = String::new();
    for r in w.merged_records() {
        match r.tag {
            "tx" => {
                start.insert(r.a, r.t.nanos());
            }
            "done" => {
                if let Some(t0) = start.remove(&r.a) {
                    let end = r.t.nanos();
                    out.push_str(&format!(
                        "{{\"span\":\"rpc\",\"key\":{},\"start\":{},\"end\":{},\"rtt_ns\":{}}}\n",
                        r.a,
                        t0,
                        end,
                        end - t0
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world(shards: usize, seed: u64, drop_every: u64) -> HostWorld {
        grouped_incast(IncastSpec {
            nodes: 12,
            group: 4,
            shards,
            seed,
            rpc_size: 8 * 1024,
            heartbeat_ns: 150_000,
            drop_every,
        })
    }

    #[test]
    fn rpcs_complete_end_to_end() {
        let mut w = small_world(1, 7, 0);
        w.run_until(Time(3_000_000));
        let done: u64 = w.lanes().iter().map(|l| l.state.app.rpcs_done).sum();
        assert!(done > 50, "closed-loop RPCs flowed: {done}");
        let served: u64 = w.lanes().iter().map(|l| l.state.app.requests_served).sum();
        assert!(served >= done, "each done RPC was served");
        // The incast is deep enough that DCQCN engaged at some sender.
        let cnps: u64 = w
            .lanes()
            .iter()
            .flat_map(|l| l.state.rnic.qps.iter())
            .map(|q| q.cnps_rx)
            .sum();
        assert!(cnps > 0, "receiver ECN must trigger CNPs under incast");
    }

    #[test]
    fn digests_identical_across_shard_counts() {
        let mut base = small_world(1, 90125, 0);
        base.run_until(Time(2_000_000));
        let base_digest = base.digest();
        let base_spans = spans_jsonl(&base);
        for shards in [2usize, 4] {
            let mut w = small_world(shards, 90125, 0);
            w.run_until(Time(2_000_000));
            assert_eq!(base_digest, w.digest(), "shards={shards} digest");
            assert_eq!(base_spans, spans_jsonl(&w), "shards={shards} spans");
        }
        assert!(base_spans.contains("\"span\":\"rpc\""), "spans derived");
    }

    #[test]
    fn loss_recovers_via_go_back_n_identically() {
        let mut a = small_world(1, 11, 97);
        a.run_until(Time(3_000_000));
        let retx: u64 = a
            .lanes()
            .iter()
            .flat_map(|l| l.state.rnic.qps.iter())
            .map(|q| q.retransmissions)
            .sum();
        assert!(retx > 0, "drop knob must force retransmissions");
        let done: u64 = a.lanes().iter().map(|l| l.state.app.rpcs_done).sum();
        assert!(done > 10, "RPCs complete despite loss: {done}");
        let mut b = small_world(4, 11, 97);
        b.run_until(Time(3_000_000));
        assert_eq!(
            a.digest(),
            b.digest(),
            "lossy run byte-identical at 4 shards"
        );
    }

    #[test]
    fn keepalive_declares_dead_peer() {
        // Total blackout: every host drops every egress packet, so after
        // the handshake (which is out-of-band) probes go unanswered.
        let mut w = grouped_incast(IncastSpec {
            nodes: 4,
            group: 4,
            shards: 1,
            seed: 3,
            rpc_size: 1024,
            heartbeat_ns: 0,
            drop_every: 1,
        });
        w.run_until(Time(2_000_000));
        let dead = w
            .lanes()
            .iter()
            .flat_map(|l| l.state.chans.iter())
            .filter(|c| c.state == ChanState::Dead)
            .count();
        assert!(dead > 0, "keepalive must declare the peer dead");
        let recs = w.merged_records();
        assert!(
            recs.iter().any(|r| r.tag == "peer_dead"),
            "peer_dead emitted"
        );
    }

    #[test]
    fn window_backpressure_counts_stalls() {
        let mut w = small_world(1, 5, 0);
        // Run long enough for connects, then find a connected bulk client
        // channel and flood it.
        w.run_until(Time(400_000));
        let mut flooded = false;
        for i in 0..w.lane_count() {
            let lane = w.lane_mut(i);
            let up = lane
                .state
                .chans
                .iter()
                .position(|c| c.state == ChanState::Up && c.role == ROLE_BULK);
            if let Some(chan) = up {
                for _ in 0..200 {
                    channel_request(lane, chan as u32, 64);
                }
                flooded = true;
                break;
            }
        }
        assert!(flooded, "a bulk channel came up");
        w.run_until(Time(1_000_000));
        let stalls: u64 = w
            .lanes()
            .iter()
            .flat_map(|l| l.state.chans.iter())
            .map(|c| c.window_stalls)
            .sum();
        assert!(stalls > 0, "window must have closed under the flood");
    }
}
