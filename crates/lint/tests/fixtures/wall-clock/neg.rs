//! Virtual time only: `Instant::now()` is banned (the mention in this
//! doc comment must not fire).

pub fn now_ns(world: &World) -> u64 {
    world.now().as_nanos()
}
