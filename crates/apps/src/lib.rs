//! # xrdma-apps — the production application models (§II-C, Fig 2)
//!
//! The paper's evaluation runs on three Alibaba products whose traffic
//! shapes drive Figures 8, 9, 11 and 12:
//!
//! * **Pangu** — the distributed storage substrate: block servers receive
//!   front-end I/O and replicate each write to several chunk servers over
//!   full-mesh X-RDMA channels ([`pangu`]).
//! * **ESSD** — cloud block storage: virtual-machine front-ends issuing
//!   large (128 KiB) writes through block servers ([`essd`]).
//! * **X-DB** — a distributed database front-end: small-write-heavy,
//!   latency-sensitive ([`xdb`]).
//!
//! [`workload`] supplies the traffic patterns the production evaluation
//! exercises: restart storms (Fig 8), load surges / the shopping spree
//! (Fig 12), and diurnal saturation switching (Fig 3).

pub mod essd;
pub mod pangu;
pub mod workload;
pub mod xdb;

pub use essd::EssdFrontend;
pub use pangu::{Pangu, PanguConfig};
pub use workload::{LoadSchedule, Phase};
pub use xdb::XdbFrontend;
