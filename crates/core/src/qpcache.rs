//! The QP cache (§IV-E): recycle QPs through the RESET state instead of
//! destroying and re-creating them.
//!
//! QP creation is the expensive half of connection establishment because
//! it synchronizes hardware resources (§IX "Connection Establishment").
//! X-RDMA therefore drops disconnected QPs back into a per-context pool
//! after `modify_to_reset`, and connection setup prefers the pool —
//! §VII-C measures the effect as 3946 µs → 2451 µs (−38 %) per connect,
//! and ~3 s instead of ~10 s to stand up 4096 connections.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use xrdma_rnic::mem::Pd;
use xrdma_rnic::{CompletionQueue, Qp, QpCaps, QpState, Rnic, Srq};

/// Per-context pool of recycled QPs.
pub struct QpCache {
    rnic: Rc<Rnic>,
    pd: Rc<Pd>,
    cq: Rc<CompletionQueue>,
    srq: Option<Rc<Srq>>,
    caps: QpCaps,
    capacity: usize,
    pool: RefCell<VecDeque<Rc<Qp>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

/// A QP plus whether it was freshly created (pays the creation cost in the
/// connection manager) or recycled from the cache.
pub struct CachedQp {
    pub qp: Rc<Qp>,
    pub fresh: bool,
}

impl QpCache {
    pub fn new(
        rnic: Rc<Rnic>,
        pd: Rc<Pd>,
        cq: Rc<CompletionQueue>,
        srq: Option<Rc<Srq>>,
        caps: QpCaps,
        capacity: usize,
    ) -> QpCache {
        QpCache {
            rnic,
            pd,
            cq,
            srq,
            caps,
            capacity,
            pool: RefCell::new(VecDeque::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Take a QP for a new connection: recycled if available, otherwise
    /// freshly created.
    pub fn get(&self) -> CachedQp {
        if let Some(qp) = self.pool.borrow_mut().pop_front() {
            debug_assert_eq!(qp.state(), QpState::Reset);
            self.hits.set(self.hits.get() + 1);
            return CachedQp { qp, fresh: false };
        }
        self.misses.set(self.misses.get() + 1);
        let qp = self.rnic.create_qp(
            &self.pd,
            self.cq.clone(),
            self.cq.clone(),
            self.caps,
            self.srq.clone(),
        );
        CachedQp { qp, fresh: true }
    }

    /// Return a QP after its channel closed. Errored QPs cannot be
    /// recycled (hardware would reject reuse) — they are destroyed.
    /// Beyond capacity, surplus QPs are destroyed too.
    pub fn put(&self, qp: Rc<Qp>) {
        if qp.state() == QpState::Error || self.capacity == 0 {
            self.rnic.destroy_qp(&qp);
            return;
        }
        qp.modify_to_reset();
        let mut pool = self.pool.borrow_mut();
        if pool.len() >= self.capacity {
            drop(pool);
            self.rnic.destroy_qp(&qp);
            return;
        }
        pool.push_back(qp);
    }

    pub fn len(&self) -> usize {
        self.pool.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.pool.borrow().is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrdma_fabric::{Fabric, FabricConfig, NodeId};
    use xrdma_rnic::RnicConfig;
    use xrdma_sim::{SimRng, World};

    fn cache(capacity: usize) -> (Rc<Rnic>, QpCache) {
        let w = World::new();
        let rng = SimRng::new(1);
        let fabric = Fabric::new(w, FabricConfig::pair(), &rng);
        let rnic = Rnic::new(&fabric, NodeId(0), RnicConfig::default(), rng.fork("n"));
        let pd = rnic.alloc_pd();
        let cq = rnic.create_cq(1024);
        let qc = QpCache::new(rnic.clone(), pd, cq, None, QpCaps::default(), capacity);
        (rnic, qc)
    }

    #[test]
    fn miss_then_hit() {
        let (_r, qc) = cache(4);
        let a = qc.get();
        assert!(a.fresh);
        assert_eq!(qc.misses(), 1);
        let qpn = a.qp.qpn;
        qc.put(a.qp);
        assert_eq!(qc.len(), 1);
        let b = qc.get();
        assert!(!b.fresh, "recycled");
        assert_eq!(b.qp.qpn, qpn, "same QP back");
        assert_eq!(qc.hits(), 1);
    }

    #[test]
    fn put_resets_state() {
        let (r, qc) = cache(4);
        let a = qc.get();
        let peer = r.create_qp(
            &r.alloc_pd(),
            r.create_cq(16),
            r.create_cq(16),
            QpCaps::default(),
            None,
        );
        a.qp.modify_to_init().unwrap();
        a.qp.modify_to_rtr(NodeId(0), peer.qpn).unwrap();
        a.qp.modify_to_rts().unwrap();
        qc.put(a.qp.clone());
        assert_eq!(a.qp.state(), QpState::Reset);
    }

    #[test]
    fn errored_qps_destroyed_not_cached() {
        let (r, qc) = cache(4);
        let a = qc.get();
        let count_before = r.qp_count();
        // Force the error state via the public path: reset-then-reuse is
        // impossible for errored QPs, so simulate with the test hook.
        a.qp.modify_to_init().unwrap();
        a.qp.modify_to_rtr(NodeId(0), a.qp.qpn).unwrap();
        a.qp.modify_to_rts().unwrap();
        // Drive to error: a reset + invalid transition is not enough, so
        // use the fact that put() checks state — construct error via the
        // engine is covered in e2e tests; here use capacity-0 destroy.
        qc.put(a.qp);
        assert!(r.qp_count() <= count_before, "not leaked");
    }

    #[test]
    fn capacity_bound() {
        let (r, qc) = cache(2);
        let qps: Vec<_> = (0..4).map(|_| qc.get().qp).collect();
        let total = r.qp_count();
        assert_eq!(total, 4);
        for qp in qps {
            qc.put(qp);
        }
        assert_eq!(qc.len(), 2, "only capacity kept");
        assert_eq!(r.qp_count(), 2, "surplus destroyed");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (r, qc) = cache(0);
        let a = qc.get();
        qc.put(a.qp);
        assert_eq!(qc.len(), 0);
        assert_eq!(r.qp_count(), 0);
    }
}
