//! Clos topology math: device numbering and next-hop computation.
//!
//! Devices are numbered densely per tier. Hosts map to ToRs by division,
//! ToRs to pods by division; every ToR uplinks to all leaves of its pod and
//! every leaf uplinks to all spines. Next hops are pure functions of
//! (device, destination host, flow hash), so routing tables never need to
//! be materialized.

use crate::config::FabricConfig;
use crate::packet::{ecmp_hash, NodeId};

/// Which switch tier a device belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    Tor,
    Leaf,
    Spine,
}

/// A switch identity: tier + dense index within the tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwitchAddr {
    pub tier: Tier,
    pub idx: u32,
}

/// The next hop out of a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// Deliver to an attached host (ToR down-port).
    Host(NodeId),
    /// Forward to another switch.
    Switch(SwitchAddr),
}

/// Immutable topology descriptor shared by all components.
#[derive(Clone, Debug)]
pub struct Topology {
    pub hosts_per_tor: u32,
    pub tors_per_pod: u32,
    pub leaves_per_pod: u32,
    pub pods: u32,
    pub spines: u32,
}

impl Topology {
    pub fn from_config(cfg: &FabricConfig) -> Topology {
        cfg.validate();
        Topology {
            hosts_per_tor: cfg.hosts_per_tor,
            tors_per_pod: cfg.tors_per_pod,
            leaves_per_pod: cfg.leaves_per_pod,
            pods: cfg.pods,
            spines: cfg.spines,
        }
    }

    pub fn n_hosts(&self) -> u32 {
        self.hosts_per_tor * self.tors_per_pod * self.pods
    }

    pub fn n_tors(&self) -> u32 {
        self.tors_per_pod * self.pods
    }

    pub fn n_leaves(&self) -> u32 {
        self.leaves_per_pod * self.pods
    }

    /// ToR index serving a host.
    pub fn tor_of(&self, h: NodeId) -> u32 {
        h.0 / self.hosts_per_tor
    }

    /// Pod containing a ToR.
    pub fn pod_of_tor(&self, tor: u32) -> u32 {
        tor / self.tors_per_pod
    }

    /// Pod containing a host.
    pub fn pod_of_host(&self, h: NodeId) -> u32 {
        self.pod_of_tor(self.tor_of(h))
    }

    /// Pod containing a leaf.
    pub fn pod_of_leaf(&self, leaf: u32) -> u32 {
        leaf / self.leaves_per_pod
    }

    /// Number of hops (switches) between two hosts: 1 (same rack),
    /// 3 (same pod, via leaf), or 5 (cross-pod, via spine).
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> u32 {
        if self.tor_of(a) == self.tor_of(b) {
            1
        } else if self.pod_of_host(a) == self.pod_of_host(b) {
            3
        } else {
            5
        }
    }

    /// Compute the next hop out of `sw` toward host `dst` for a flow.
    ///
    /// ECMP stage constants differ per tier so a flow's choices at
    /// successive tiers decorrelate.
    pub fn next_hop(&self, sw: SwitchAddr, dst: NodeId, flow_hash: u64) -> NextHop {
        debug_assert!(dst.0 < self.n_hosts(), "unknown destination {dst}");
        match sw.tier {
            Tier::Tor => {
                let my_tor = sw.idx;
                if self.tor_of(dst) == my_tor {
                    NextHop::Host(dst)
                } else {
                    let pod = self.pod_of_tor(my_tor);
                    let j = ecmp_hash(flow_hash, 0xA1, self.leaves_per_pod as usize) as u32;
                    NextHop::Switch(SwitchAddr {
                        tier: Tier::Leaf,
                        idx: pod * self.leaves_per_pod + j,
                    })
                }
            }
            Tier::Leaf => {
                let my_pod = self.pod_of_leaf(sw.idx);
                let dst_pod = self.pod_of_host(dst);
                if dst_pod == my_pod {
                    NextHop::Switch(SwitchAddr {
                        tier: Tier::Tor,
                        idx: self.tor_of(dst),
                    })
                } else {
                    let s = ecmp_hash(flow_hash, 0xB2, self.spines as usize) as u32;
                    NextHop::Switch(SwitchAddr {
                        tier: Tier::Spine,
                        idx: s,
                    })
                }
            }
            Tier::Spine => {
                let dst_pod = self.pod_of_host(dst);
                let j = ecmp_hash(flow_hash, 0xC3, self.leaves_per_pod as usize) as u32;
                NextHop::Switch(SwitchAddr {
                    tier: Tier::Leaf,
                    idx: dst_pod * self.leaves_per_pod + j,
                })
            }
        }
    }

    /// The full switch path a flow takes from `src` to `dst` (diagnostic /
    /// tests; the simulator itself routes hop by hop).
    pub fn path(&self, src: NodeId, dst: NodeId, flow_hash: u64) -> Vec<SwitchAddr> {
        let mut path = Vec::new();
        let mut cur = SwitchAddr {
            tier: Tier::Tor,
            idx: self.tor_of(src),
        };
        loop {
            path.push(cur);
            assert!(path.len() <= 8, "routing loop: {path:?}");
            match self.next_hop(cur, dst, flow_hash) {
                NextHop::Host(_) => return path,
                NextHop::Switch(next) => cur = next,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;

    fn topo() -> Topology {
        Topology::from_config(&FabricConfig::cluster(2, 4, 8))
    }

    #[test]
    fn indexing() {
        let t = topo();
        assert_eq!(t.n_hosts(), 64);
        assert_eq!(t.n_tors(), 8);
        assert_eq!(t.n_leaves(), 8);
        assert_eq!(t.tor_of(NodeId(0)), 0);
        assert_eq!(t.tor_of(NodeId(8)), 1);
        assert_eq!(t.pod_of_host(NodeId(31)), 0);
        assert_eq!(t.pod_of_host(NodeId(32)), 1);
    }

    #[test]
    fn same_rack_path_is_single_tor() {
        let t = topo();
        let p = t.path(NodeId(0), NodeId(1), 7);
        assert_eq!(
            p,
            vec![SwitchAddr {
                tier: Tier::Tor,
                idx: 0
            }]
        );
        assert_eq!(t.hop_count(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn same_pod_path_via_leaf() {
        let t = topo();
        let p = t.path(NodeId(0), NodeId(9), 7);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].tier, Tier::Tor);
        assert_eq!(p[1].tier, Tier::Leaf);
        assert!(t.pod_of_leaf(p[1].idx) == 0, "stays in pod 0");
        assert_eq!(
            p[2],
            SwitchAddr {
                tier: Tier::Tor,
                idx: 1
            }
        );
        assert_eq!(t.hop_count(NodeId(0), NodeId(9)), 3);
    }

    #[test]
    fn cross_pod_path_via_spine() {
        let t = topo();
        let p = t.path(NodeId(0), NodeId(63), 7);
        assert_eq!(p.len(), 5);
        assert_eq!(p[2].tier, Tier::Spine);
        assert_eq!(
            p[4],
            SwitchAddr {
                tier: Tier::Tor,
                idx: 7
            }
        );
        assert_eq!(t.hop_count(NodeId(0), NodeId(63)), 5);
    }

    #[test]
    fn path_stable_per_flow() {
        let t = topo();
        assert_eq!(
            t.path(NodeId(0), NodeId(63), 99),
            t.path(NodeId(0), NodeId(63), 99)
        );
    }

    #[test]
    fn flows_spread_over_leaves() {
        let t = topo();
        let mut used = std::collections::HashSet::new();
        for flow in 0..256u64 {
            let p = t.path(NodeId(0), NodeId(9), flow);
            used.insert(p[1].idx);
        }
        // Pod 0 has 4 leaves; ECMP should touch most of them.
        assert!(used.len() >= 3, "only used leaves {used:?}");
        assert!(used.iter().all(|&l| t.pod_of_leaf(l) == 0));
    }

    #[test]
    fn degenerate_single_tor() {
        let t = Topology::from_config(&FabricConfig::rack(16));
        assert_eq!(t.path(NodeId(3), NodeId(12), 1).len(), 1);
    }
}
