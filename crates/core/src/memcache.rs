//! The per-context memory cache (§IV-E) with the isolation scheme of
//! §VI-C.
//!
//! RDMA-enabled memory is pooled as a set of identically sized MRs
//! (4 MiB each — large enough to avoid the many-small-MRs slowdown LITE
//! observed). Allocation is arena-style inside each MR: a bump pointer and
//! a live-allocation count; when the count drops to zero the arena resets.
//! If no arena has room, a new MR is registered (grow); idle arenas beyond
//! `keep_idle` are deregistered by the context timer (shrink). The
//! occupy/in-use split is exactly what Figure 11c plots.
//!
//! Isolation mode places every arena in the high address range with guard
//! gaps, so out-of-bounds access from application bugs faults in the
//! simulated MR bounds check rather than corrupting a neighbour (§VI-C).

use std::cell::RefCell;
use std::rc::Rc;

use xrdma_rnic::mem::Pd;
use xrdma_rnic::{AccessFlags, Mr, Rnic};

use crate::config::MemCacheConfig;
use crate::error::XrdmaError;

/// One pooled MR with bump-allocation state.
struct Arena {
    mr: Rc<Mr>,
    bump: u64,
    live: u32,
}

impl Arena {
    fn fits(&self, len: u64) -> bool {
        self.bump + len <= self.mr.len
    }
}

/// A buffer handed out by the cache. Return it with
/// [`MemCache::release`]; the pool tracks arenas by MR key.
#[derive(Clone, Copy, Debug)]
pub struct McBuf {
    pub addr: u64,
    pub len: u64,
    pub lkey: u32,
    pub rkey: u32,
}

/// The memory cache.
pub struct MemCache {
    rnic: Rc<Rnic>,
    pd: Rc<Pd>,
    cfg: MemCacheConfig,
    page_kind: xrdma_rnic::PageKind,
    arenas: RefCell<Vec<Arena>>,
    /// Bytes handed out and not yet released.
    in_use: std::cell::Cell<u64>,
    /// Cumulative registrations (stats).
    grows: std::cell::Cell<u64>,
    shrinks: std::cell::Cell<u64>,
    /// Host CPU cost incurred by registrations (charged by the caller).
    pending_reg_cost: std::cell::Cell<u64>,
}

impl MemCache {
    pub fn new(
        rnic: Rc<Rnic>,
        pd: Rc<Pd>,
        cfg: MemCacheConfig,
        page_kind: xrdma_rnic::PageKind,
    ) -> MemCache {
        let mc = MemCache {
            rnic,
            pd,
            cfg,
            page_kind,
            arenas: RefCell::new(Vec::new()),
            in_use: std::cell::Cell::new(0),
            grows: std::cell::Cell::new(0),
            shrinks: std::cell::Cell::new(0),
            pending_reg_cost: std::cell::Cell::new(0),
        };
        // Warm pool: register the first arena at context startup so the
        // first connection's buffers don't pay registration on the data
        // path (production middlewares pre-register at init).
        if mc.cfg.mr_bytes > 0 {
            if let Ok(b) = mc.alloc(1) {
                mc.release(&b);
            }
        }
        mc
    }

    /// Allocate an RDMA-enabled buffer of `len` bytes.
    ///
    /// Oversized requests (> one arena) get a dedicated right-sized MR —
    /// it participates in release/shrink like any arena.
    pub fn alloc(&self, len: u64) -> Result<McBuf, XrdmaError> {
        if len == 0 {
            return Err(XrdmaError::BadConfig("zero-length allocation"));
        }
        let mut arenas = self.arenas.borrow_mut();
        // First fit among existing arenas.
        for a in arenas.iter_mut() {
            if a.fits(len) {
                let addr = a.mr.addr + a.bump;
                a.bump += len;
                a.live += 1;
                self.in_use.set(self.in_use.get() + len);
                return Ok(McBuf {
                    addr,
                    len,
                    lkey: a.mr.lkey,
                    rkey: a.mr.rkey,
                });
            }
        }
        // Grow: register a new arena.
        if self.cfg.max_mrs > 0 && arenas.len() >= self.cfg.max_mrs {
            return Err(XrdmaError::OutOfMemory);
        }
        let mr_len = self.cfg.mr_bytes.max(len);
        let mr = self.rnic.reg_mr(
            &self.pd,
            mr_len,
            AccessFlags::FULL,
            self.page_kind,
            self.cfg.backed,
            self.cfg.isolation,
        );
        self.pending_reg_cost.set(
            self.pending_reg_cost.get() + self.rnic.reg_mr_cost(mr_len, self.page_kind).as_nanos(),
        );
        self.grows.set(self.grows.get() + 1);
        let addr = mr.addr;
        let (lkey, rkey) = (mr.lkey, mr.rkey);
        arenas.push(Arena {
            mr,
            bump: len,
            live: 1,
        });
        self.in_use.set(self.in_use.get() + len);
        Ok(McBuf {
            addr,
            len,
            lkey,
            rkey,
        })
    }

    /// Return a buffer. When an arena's live count reaches zero its bump
    /// pointer resets, making the whole arena reusable.
    pub fn release(&self, buf: &McBuf) {
        let mut arenas = self.arenas.borrow_mut();
        let Some(a) = arenas.iter_mut().find(|a| a.mr.lkey == buf.lkey) else {
            // Arena already shrunk away; just fix accounting.
            self.in_use.set(self.in_use.get().saturating_sub(buf.len));
            return;
        };
        debug_assert!(a.live > 0, "double release");
        a.live = a.live.saturating_sub(1);
        if a.live == 0 {
            a.bump = 0;
        }
        self.in_use.set(self.in_use.get().saturating_sub(buf.len));
    }

    /// Shrink pass (run from the context timer): deregister idle arenas
    /// beyond `keep_idle`. Returns the number reclaimed.
    pub fn shrink(&self) -> usize {
        let mut arenas = self.arenas.borrow_mut();
        let mut idle: Vec<usize> = arenas
            .iter()
            .enumerate()
            .filter(|(_, a)| a.live == 0)
            .map(|(i, _)| i)
            .collect();
        if idle.len() <= self.cfg.keep_idle {
            return 0;
        }
        let excess = idle.len() - self.cfg.keep_idle;
        let mut reclaimed = 0;
        // Remove from the back to keep indices valid.
        idle.reverse();
        for &i in idle.iter().take(excess) {
            let a = arenas.remove(i);
            self.rnic.dereg_mr(&a.mr);
            reclaimed += 1;
        }
        self.shrinks.set(self.shrinks.get() + reclaimed as u64);
        reclaimed
    }

    /// Registered ("occupy") bytes — the outer line of Fig 11c.
    pub fn occupied_bytes(&self) -> u64 {
        self.arenas.borrow().iter().map(|a| a.mr.len).sum()
    }

    /// Handed-out ("in-use") bytes — the inner line of Fig 11c.
    pub fn in_use_bytes(&self) -> u64 {
        self.in_use.get()
    }

    pub fn arena_count(&self) -> usize {
        self.arenas.borrow().len()
    }

    pub fn grow_count(&self) -> u64 {
        self.grows.get()
    }

    pub fn shrink_count(&self) -> u64 {
        self.shrinks.get()
    }

    /// Drain the host-CPU registration cost accumulated since the last
    /// call (the context charges it to its thread).
    pub fn take_reg_cost(&self) -> xrdma_sim::Dur {
        xrdma_sim::Dur::nanos(self.pending_reg_cost.replace(0))
    }

    /// Write real bytes into a cache buffer (backed mode only; bounds are
    /// enforced by the MR).
    pub fn write(&self, buf: &McBuf, off: u64, data: &[u8]) -> Result<(), XrdmaError> {
        let arenas = self.arenas.borrow();
        let a = arenas
            .iter()
            .find(|a| a.mr.lkey == buf.lkey)
            .ok_or(XrdmaError::OutOfMemory)?;
        debug_assert!(off + data.len() as u64 <= buf.len, "write past buffer");
        a.mr.write(buf.addr + off, data).map_err(XrdmaError::Verbs)
    }

    /// Read bytes back out of a cache buffer.
    pub fn read(&self, buf: &McBuf, off: u64, len: u64) -> Result<Vec<u8>, XrdmaError> {
        let arenas = self.arenas.borrow();
        let a = arenas
            .iter()
            .find(|a| a.mr.lkey == buf.lkey)
            .ok_or(XrdmaError::OutOfMemory)?;
        a.mr.read(buf.addr + off, len).map_err(XrdmaError::Verbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrdma_fabric::{Fabric, FabricConfig, NodeId};
    use xrdma_rnic::{PageKind, RnicConfig};
    use xrdma_sim::{SimRng, World};

    fn cache(cfg: MemCacheConfig) -> MemCache {
        let w = World::new();
        let rng = SimRng::new(1);
        let fabric = Fabric::new(w, FabricConfig::pair(), &rng);
        let rnic = Rnic::new(&fabric, NodeId(0), RnicConfig::default(), rng.fork("n"));
        let pd = rnic.alloc_pd();
        MemCache::new(rnic, pd, cfg, PageKind::Anonymous)
    }

    fn small_cfg() -> MemCacheConfig {
        MemCacheConfig {
            mr_bytes: 1024,
            keep_idle: 1,
            max_mrs: 0,
            isolation: true,
            backed: true,
        }
    }

    #[test]
    fn alloc_release_accounting() {
        let mc = cache(small_cfg());
        let a = mc.alloc(100).unwrap();
        let b = mc.alloc(200).unwrap();
        assert_eq!(mc.in_use_bytes(), 300);
        assert_eq!(mc.occupied_bytes(), 1024, "one (warm) arena");
        assert_eq!(mc.arena_count(), 1);
        mc.release(&a);
        assert_eq!(mc.in_use_bytes(), 200);
        mc.release(&b);
        assert_eq!(mc.in_use_bytes(), 0);
        // Arena resets: full capacity available again.
        let c = mc.alloc(1024).unwrap();
        assert_eq!(mc.arena_count(), 1, "reused the reset arena");
        mc.release(&c);
    }

    #[test]
    fn grows_when_full() {
        let mc = cache(small_cfg());
        let a = mc.alloc(800).unwrap();
        let _b = mc.alloc(800).unwrap();
        // Warm arena holds the first 800; the second needed a grow.
        assert_eq!(mc.arena_count(), 2);
        assert_eq!(mc.grow_count(), 2);
        assert!(mc.take_reg_cost().as_nanos() > 0, "registration cost owed");
        mc.release(&a);
    }

    #[test]
    fn oversized_gets_dedicated_mr() {
        let mc = cache(small_cfg());
        let big = mc.alloc(10_000).unwrap();
        assert_eq!(big.len, 10_000);
        // Warm arena (1024) + the dedicated oversized MR.
        assert_eq!(mc.occupied_bytes(), 1024 + 10_000);
        assert_eq!(mc.arena_count(), 2);
        mc.release(&big);
    }

    #[test]
    fn shrink_reclaims_idle_arenas() {
        let mc = cache(small_cfg());
        let bufs: Vec<_> = (0..4).map(|_| mc.alloc(900).unwrap()).collect();
        assert_eq!(mc.arena_count(), 4);
        for b in &bufs {
            mc.release(b);
        }
        let reclaimed = mc.shrink();
        assert_eq!(reclaimed, 3, "keep_idle = 1");
        assert_eq!(mc.arena_count(), 1);
        assert_eq!(mc.shrink_count(), 3);
        assert_eq!(mc.shrink(), 0, "second pass is a no-op");
    }

    #[test]
    fn shrink_spares_live_arenas() {
        let mc = cache(small_cfg());
        let keep = mc.alloc(900).unwrap();
        let tmp = mc.alloc(900).unwrap();
        let tmp2 = mc.alloc(900).unwrap();
        mc.release(&tmp);
        mc.release(&tmp2);
        mc.shrink();
        assert!(mc.arena_count() >= 2, "live arena + keep_idle");
        // The kept buffer is still usable.
        mc.write(&keep, 0, b"still here").unwrap();
        assert_eq!(mc.read(&keep, 0, 10).unwrap(), b"still here");
        mc.release(&keep);
    }

    #[test]
    fn max_mrs_cap() {
        let mut cfg = small_cfg();
        cfg.max_mrs = 2;
        let mc = cache(cfg);
        let _a = mc.alloc(900).unwrap();
        let _b = mc.alloc(900).unwrap();
        assert!(matches!(mc.alloc(900), Err(XrdmaError::OutOfMemory)));
    }

    #[test]
    fn isolation_places_high() {
        let mc = cache(small_cfg());
        let b = mc.alloc(64).unwrap();
        assert!(b.addr > 0x7000_0000_0000, "high address range (§VI-C)");
    }

    #[test]
    fn data_roundtrip() {
        let mc = cache(small_cfg());
        let b = mc.alloc(64).unwrap();
        mc.write(&b, 8, b"cached-bytes").unwrap();
        assert_eq!(mc.read(&b, 8, 12).unwrap(), b"cached-bytes");
        mc.release(&b);
    }

    #[test]
    fn zero_len_rejected() {
        let mc = cache(small_cfg());
        assert!(mc.alloc(0).is_err());
    }

    #[test]
    fn conservation_invariant_under_churn() {
        // in_use <= occupied at every step; everything released → in_use 0.
        let mc = cache(MemCacheConfig {
            mr_bytes: 4096,
            keep_idle: 2,
            max_mrs: 0,
            isolation: false,
            backed: false,
        });
        let mut rng = SimRng::new(99);
        let mut live: Vec<McBuf> = Vec::new();
        for _ in 0..500 {
            if live.is_empty() || rng.chance(0.6) {
                let len = rng.range(1, 3000);
                live.push(mc.alloc(len).unwrap());
            } else {
                let i = rng.next_below(live.len() as u64) as usize;
                let b = live.swap_remove(i);
                mc.release(&b);
            }
            assert!(mc.in_use_bytes() <= mc.occupied_bytes());
            if rng.chance(0.05) {
                mc.shrink();
            }
        }
        for b in live.drain(..) {
            mc.release(&b);
        }
        assert_eq!(mc.in_use_bytes(), 0);
    }
}
