//! Offline shim for `rayon`.
//!
//! The bench harness only ever does `xs.par_iter().map(f).collect()` /
//! `xs.into_par_iter().map(f).collect()`, so this shim implements exactly
//! that pipeline with `std::thread::scope`: items are distributed over
//! `available_parallelism` workers and results are reassembled in input
//! order. This preserves the project rule that parallelism happens across
//! worlds, never inside one — each closure invocation builds and runs its
//! own `World`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An eagerly-collected parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map: a shared work index hands items to
/// workers; each worker writes results into its slot.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items move into Option slots so workers can take them by index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

pub mod prelude {
    use super::ParIter;

    /// `xs.into_par_iter()` for any owned iterable.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// `xs.par_iter()` borrowing from slices, Vecs and arrays.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Send + 'data;
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Send + 'data,
    {
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let xs = vec![String::from("a"), String::from("bb")];
        let lens: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2]);
    }
}
