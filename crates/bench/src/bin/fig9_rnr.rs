//! Figure 9: the RNR counter under Pangu-style load.
//!
//! Paper claim: X-RDMA's seq-ack window keeps applications **RNR-free**,
//! where the primitive RDMA stack averages ~0.91 RNR errors per sampling
//! interval on the same workload.
//!
//! The "native RDMA" arm reproduces the real failure mode: the receiver
//! replenishes its receive queue from its application thread, and bursts
//! outrun the posted receives — exactly the §III robustness Issue 1.

use std::cell::Cell;
use std::rc::Rc;

use xrdma_bench::scenarios::{connect_pair, ctx, net};
use xrdma_bench::Report;
use xrdma_core::XrdmaConfig;
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::verbs::Payload;
use xrdma_rnic::{QpCaps, RecvWr, Rnic, RnicConfig, SendWr};
use xrdma_sim::{Dur, SimRng, World};

/// Native verbs receiver: posts a small batch of receives and replenishes
/// only when its (busy) application thread gets around to it.
fn run_native(seed: u64, intervals: u32) -> Vec<u64> {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let tx = Rnic::new(&fabric, NodeId(0), RnicConfig::default(), rng.fork("tx"));
    let rx = Rnic::new(&fabric, NodeId(1), RnicConfig::default(), rng.fork("rx"));
    let pd_t = tx.alloc_pd();
    let pd_r = rx.alloc_pd();
    let cq_t = tx.create_cq(8192);
    let cq_r = rx.create_cq(8192);
    let caps = QpCaps {
        max_send_wr: 4096,
        max_recv_wr: 64,
    };
    let qa = tx.create_qp(&pd_t, cq_t.clone(), cq_t.clone(), caps, None);
    let qb = rx.create_qp(&pd_r, cq_r.clone(), cq_r.clone(), caps, None);
    Rnic::connect_pair(&tx, &qa, &rx, &qb).expect("fresh QPs wire cleanly");

    // Receiver: 48 receives posted, replenished every 150 µs (the app
    // thread is busy doing storage work between polls). Most bursts fit;
    // occasionally one outruns the posted receives — the paper's ~1 RNR
    // per interval regime.
    for i in 0..48 {
        qb.post_recv(RecvWr::new(i, 0, 4096, 0)).unwrap();
    }
    {
        let qb2 = qb.clone();
        let cq = cq_r.clone();
        let w = world.clone();
        fn replenish(qb: Rc<xrdma_rnic::Qp>, cq: Rc<xrdma_rnic::CompletionQueue>, w: Rc<World>) {
            let drained = cq.poll(usize::MAX).len();
            for i in 0..drained {
                let _ = qb.post_recv(RecvWr::new(i as u64, 0, 4096, 0));
            }
            let qb2 = qb.clone();
            let cq2 = cq.clone();
            let w2 = w.clone();
            w.schedule_in(Dur::micros(150), move || replenish(qb2, cq2, w2));
        }
        replenish(qb2, cq, w);
    }

    // Sender: bursty Pangu-ish traffic — batches of sends on a timer.
    {
        let tx2 = tx.clone();
        let qa2 = qa.clone();
        let w = world.clone();
        let mut burst_rng = rng.fork("bursts");
        fn burst(
            tx: Rc<Rnic>,
            qa: Rc<xrdma_rnic::Qp>,
            w: Rc<World>,
            mut rng: SimRng,
            mut wr_id: u64,
        ) {
            let n = rng.range(4, 40);
            for _ in 0..n {
                let _ = tx.post_send(&qa, SendWr::send(wr_id, Payload::Zero(1024)).unsignaled());
                wr_id += 1;
            }
            let gap = Dur::nanos(rng.exp(300_000.0));
            let w2 = w.clone();
            w.schedule_in(gap, move || burst(tx, qa, w2, rng, wr_id));
        }
        let _ = &mut burst_rng;
        burst(tx2, qa2, w, burst_rng, 0);
    }

    // Sample the RNR counter once per interval (1 s in the paper's plot;
    // 10 ms here — same statistic, compressed timescale).
    let samples = Rc::new(std::cell::RefCell::new(Vec::new()));
    let last = Rc::new(Cell::new(0u64));
    for _ in 0..intervals {
        world.run_for(Dur::millis(10));
        let total = rx.stats().rnr_naks_sent;
        samples.borrow_mut().push(total - last.get());
        last.set(total);
    }
    let out = samples.borrow().clone();
    out
}

/// X-RDMA arm: same bursty traffic through the middleware.
fn run_xrdma(seed: u64, intervals: u32) -> (Vec<u64>, u64) {
    let n = net(FabricConfig::pair(), seed);
    let client = ctx(&n, 0, XrdmaConfig::default());
    let server = ctx(&n, 1, XrdmaConfig::default());
    let (c, s) = connect_pair(&n, &client, &server, 7);
    // The receiving application is just as slow/bursty — it doesn't matter:
    // the window paces the sender.
    let srv = server.clone();
    s.set_on_request(move |_, _, _| {
        srv.thread().charge(Dur::micros(15));
    });
    {
        let w = n.world.clone();
        let mut burst_rng = n.rng.fork("bursts");
        fn burst(c: Rc<xrdma_core::XrdmaChannel>, w: Rc<World>, mut rng: SimRng) {
            let k = rng.range(4, 40);
            for _ in 0..k {
                let _ = c.send_oneway_size(1024);
            }
            let gap = Dur::nanos(rng.exp(300_000.0));
            let w2 = w.clone();
            w.schedule_in(gap, move || burst(c, w2, rng));
        }
        let _ = &mut burst_rng;
        burst(c.clone(), w, burst_rng);
    }
    let mut samples = Vec::new();
    let mut last = 0u64;
    for _ in 0..intervals {
        n.world.run_for(Dur::millis(10));
        let total = server.rnic().stats().rnr_naks_sent;
        samples.push(total - last);
        last = total;
    }
    let delivered = s.stats().msgs_received;
    (samples, delivered)
}

fn main() {
    let intervals = 100;
    let native = run_native(11, intervals);
    let (xrdma, delivered) = run_xrdma(11, intervals);

    let native_avg = native.iter().sum::<u64>() as f64 / native.len() as f64;
    let xrdma_avg = xrdma.iter().sum::<u64>() as f64 / xrdma.len() as f64;

    let mut rep = Report::new(
        "fig9_rnr",
        "RNR error counter: X-RDMA seq-ack window vs primitive RDMA",
    );
    rep.row(
        "native RDMA RNR per interval (avg)",
        "0.91",
        format!("{native_avg:.2}"),
        native_avg > 0.2,
    );
    rep.row(
        "X-RDMA RNR per interval",
        "0 (RNR-free)",
        format!("{xrdma_avg:.2}"),
        xrdma_avg == 0.0,
    );
    rep.row(
        "X-RDMA still moved traffic",
        "yes",
        format!("{delivered} msgs"),
        delivered > 1000,
    );
    rep.series(
        "native_rnr",
        native
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 0.01, v as f64))
            .collect(),
    );
    rep.series(
        "xrdma_rnr",
        xrdma
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 0.01, v as f64))
            .collect(),
    );
    rep.finish();
}
