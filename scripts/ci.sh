#!/usr/bin/env bash
# Full local CI gate. Run from anywhere; operates on the repo root.
#
#   build    release build of the whole workspace
#   fmt      rustfmt in check mode
#   clippy   all targets, warnings are errors
#   lint     xrdma-lint determinism/shard-safety pass (DESIGN.md §7):
#            regenerates results/lint.json and fails on any diagnostic
#            not in the committed baseline (crates/lint/lint.baseline),
#            on unused allow annotations, and on malformed annotations;
#            coverage spans the sim crates plus tests/, examples/ and
#            crates/bench
#   test     full suite across the feature matrix:
#              - default (telemetry compiled out)
#              - telemetry (event bus + exporters live)
#              - telemetry + debug_invariants (flight recorder wired to
#                the runtime invariant checkers)
#              - faults + telemetry + debug_invariants (fault injector
#                live: chaos suite + fault-plan property tests)
#              - XRDMA_SHARDS=4: the default leg rerun with every World
#                on the sharded validation kernel (DESIGN.md §3.15), so
#                the whole tier-1 suite doubles as a differential test
#                of the per-lane calendar + (Time, seq) merge rule
#              - threaded-engine leg: the sharding battery (all features)
#                run explicitly — the real middleware stack on threaded
#                ShardWorld lanes at shards {1,2,4,8}, byte-identical
#                digests/telemetry/span JSONL, loss-chaos recovery, and
#                the chaos golden reproduced read-only
#   simperf  smoke run of the event-kernel throughput race (wheel vs
#            legacy calendar) — results land in a temp dir so the
#            committed full-scale results/simperf.json stays untouched
#   msgrate  smoke run of the CQ-batching/doorbell-coalescing message-rate
#            sweep (batching on vs batch=1), same temp-dir discipline
#   qpscale  smoke run of the connection-multiplexing sweep (ChannelMux
#            pool vs 1 QP per channel), same temp-dir discipline; the
#            committed full-scale results/qpscale.json stays untouched
#   latbreak smoke run of the per-stage latency breakdown sweep (causal
#            spans, DESIGN.md §8) — asserts stage sums telescope to the
#            end-to-end sum; needs the telemetry feature, temp-dir
#            discipline as above
#   golden   the test legs must not have rewritten any committed golden
#            file (catches an XRDMA_UPDATE_GOLDEN leak or a determinism
#            break that slipped past the byte-compare tests)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace
run cargo build --release --workspace --features xrdma-bench/telemetry,xrdma-tests/telemetry
run cargo build --release --workspace --features xrdma-bench/faults,xrdma-tests/faults
run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo run -q --release -p xrdma-lint -- --format json --out results/lint.json
run cargo test -q --workspace
run cargo test -q --workspace --features xrdma-tests/telemetry
run cargo test -q --workspace --features xrdma-tests/telemetry,xrdma-tests/debug_invariants
run cargo test -q --workspace --features xrdma-tests/faults,xrdma-tests/telemetry,xrdma-tests/debug_invariants
run env XRDMA_SHARDS=4 cargo test -q --workspace
run cargo test -q -p xrdma-tests --test sharding \
    --features xrdma-tests/faults,xrdma-tests/telemetry,xrdma-tests/debug_invariants
run env XRDMA_SIMPERF_SMOKE=1 XRDMA_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release -p xrdma-bench --features xrdma-bench/faults --bin simperf
run env XRDMA_MSGRATE_SMOKE=1 XRDMA_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release -p xrdma-bench --bin msgrate
run env XRDMA_QPSCALE_SMOKE=1 XRDMA_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release -p xrdma-bench --bin qpscale
run env XRDMA_LATBREAK_SMOKE=1 XRDMA_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release -p xrdma-bench --features xrdma-bench/telemetry --bin latbreak
run git diff --exit-code -- tests/golden results/simperf.json results/msgrate.json results/qpscale.json results/lint.json results/latbreak.json

echo "==> ci.sh: all gates passed"
