//! Reliability stress: randomized loss/delay at the packet level, random
//! operation mixes, and the invariants that must survive them — exactly
//! once, in order, no stuck QPs, PFC accounting conserved.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::engine::FilterVerdict;
use xrdma_rnic::verbs::Payload;
use xrdma_rnic::{
    AccessFlags, CompletionQueue, CqeStatus, PageKind, Qp, QpCaps, RecvWr, Rnic, RnicConfig, SendWr,
};
use xrdma_sim::{Dur, SimRng, World};

struct Pair {
    world: Rc<World>,
    a: Rc<Rnic>,
    b: Rc<Rnic>,
    qa: Rc<Qp>,
    qb: Rc<Qp>,
    cqa: Rc<CompletionQueue>,
    cqb: Rc<CompletionQueue>,
}

fn pair(seed: u64, retx_ms: u64) -> Pair {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let mut cfg = RnicConfig::default();
    cfg.retx_timeout = Dur::millis(retx_ms);
    let a = Rnic::new(&fabric, NodeId(0), cfg.clone(), rng.fork("a"));
    let b = Rnic::new(&fabric, NodeId(1), cfg, rng.fork("b"));
    let pda = a.alloc_pd();
    let pdb = b.alloc_pd();
    let cqa = a.create_cq(1 << 16);
    let cqb = b.create_cq(1 << 16);
    let caps = QpCaps {
        max_send_wr: 1 << 14,
        max_recv_wr: 1 << 12,
    };
    let qa = a.create_qp(&pda, cqa.clone(), cqa.clone(), caps, None);
    let qb = b.create_qp(&pdb, cqb.clone(), cqb.clone(), caps, None);
    Rnic::connect_pair(&a, &qa, &b, &qb).expect("fresh QPs wire cleanly");
    Pair {
        world,
        a,
        b,
        qa,
        qb,
        cqa,
        cqb,
    }
}

/// Random drops AND delays on both directions; mixed sends and writes with
/// real data; everything must arrive exactly once, in order, intact.
#[test]
fn loss_and_reorder_noise_mixed_ops_exactly_once() {
    for seed in [1u64, 2, 3] {
        let p = pair(seed, 2);
        // Install noisy filters on both NICs.
        let mk_noise = |seed: u64| {
            let rng = RefCell::new(SimRng::new(seed));
            move |_pkt: &xrdma_fabric::Packet| {
                let mut rng = rng.borrow_mut();
                if rng.chance(0.05) {
                    FilterVerdict::Drop
                } else if rng.chance(0.05) {
                    FilterVerdict::Delay(Dur::micros(rng.range(1, 500)))
                } else {
                    FilterVerdict::Pass
                }
            }
        };
        p.a.set_filter(mk_noise(seed * 7 + 1));
        p.b.set_filter(mk_noise(seed * 7 + 2));

        let pdb = p.b.alloc_pd();
        let target = p.b.reg_mr(
            &pdb,
            1 << 20,
            AccessFlags::FULL,
            PageKind::Anonymous,
            true,
            false,
        );
        let recv_buf = p.b.reg_mr(
            &pdb,
            1 << 20,
            AccessFlags::FULL,
            PageKind::Anonymous,
            true,
            false,
        );
        let n = 150u64;
        for i in 0..n {
            p.qb.post_recv(RecvWr::new(i, recv_buf.addr + i * 64, 64, recv_buf.lkey))
                .unwrap();
        }
        let mut rng = SimRng::new(seed ^ 0xABC);
        let mut expected_writes = Vec::new();
        for i in 0..n {
            if rng.chance(0.5) {
                // Send with a distinctive byte pattern.
                let data = vec![(i % 251) as u8; 48];
                p.a.post_send(&p.qa, SendWr::send(i, Payload::Inline(Bytes::from(data))))
                    .unwrap();
            } else {
                let data = vec![(i % 249) as u8; 32];
                expected_writes.push((target.addr + i * 40, data.clone()));
                p.a.post_send(
                    &p.qa,
                    SendWr::write(
                        i,
                        Payload::Inline(Bytes::from(data)),
                        target.addr + i * 40,
                        target.rkey,
                    ),
                )
                .unwrap();
            }
        }
        p.world.run_for(Dur::secs(20));

        // Every op completed successfully at the sender.
        let send_cqes = p.cqa.poll(usize::MAX);
        assert_eq!(send_cqes.len() as u64, n, "seed {seed}");
        assert!(send_cqes.iter().all(|c| c.status == CqeStatus::Success));
        // Receives arrived in order, exactly once.
        let recv_cqes = p.cqb.poll(usize::MAX);
        let mut last = None;
        for c in &recv_cqes {
            assert_eq!(c.status, CqeStatus::Success);
            if let Some(prev) = last {
                assert!(c.wr_id > prev, "in order");
            }
            last = Some(c.wr_id);
        }
        // Writes landed intact despite retransmissions.
        for (addr, data) in &expected_writes {
            assert_eq!(&target.read(*addr, data.len() as u64).unwrap(), data);
        }
        // The noise actually fired.
        assert!(
            p.a.filtered_drops.get() + p.b.filtered_drops.get() > 0,
            "drops happened"
        );
        assert!(p.a.stats().retransmissions > 0, "recovery happened");
        assert_eq!(p.qa.state(), xrdma_rnic::QpState::Rts, "QP survived");
    }
}

/// Reads under the same noise: data integrity end to end.
#[test]
fn reads_survive_loss() {
    let p = pair(9, 2);
    let rng = RefCell::new(SimRng::new(99));
    p.b.set_filter(move |_pkt| {
        if rng.borrow_mut().chance(0.08) {
            FilterVerdict::Drop
        } else {
            FilterVerdict::Pass
        }
    });
    let pdb = p.b.alloc_pd();
    let src = p.b.reg_mr(
        &pdb,
        1 << 20,
        AccessFlags::FULL,
        PageKind::Anonymous,
        true,
        false,
    );
    let pda = p.a.alloc_pd();
    let dst = p.a.reg_mr(
        &pda,
        1 << 20,
        AccessFlags::FULL,
        PageKind::Anonymous,
        true,
        false,
    );
    let payload: Vec<u8> = (0..200_000).map(|i| (i % 233) as u8).collect();
    src.write(src.addr, &payload).unwrap();
    p.a.post_send(
        &p.qa,
        SendWr::read(
            1,
            dst.addr,
            dst.lkey,
            payload.len() as u64,
            src.addr,
            src.rkey,
        ),
    )
    .unwrap();
    p.world.run_for(Dur::secs(20));
    let cqe = p.cqa.poll_one().expect("read completed");
    assert_eq!(cqe.status, CqeStatus::Success);
    assert_eq!(
        dst.read(dst.addr, payload.len() as u64).unwrap(),
        payload,
        "bytes intact across retransmitted read"
    );
}

/// PFC conservation: after any incast drains, every pause has a matching
/// resume and no port stays paused.
#[test]
fn pfc_pause_resume_conservation() {
    for seed in [11u64, 12, 13] {
        let world = World::new();
        let rng = SimRng::new(seed);
        let mut fcfg = FabricConfig::rack(13);
        fcfg.pfc.xoff_bytes = 64 * 1024;
        fcfg.pfc.xon_bytes = 32 * 1024;
        let fabric = Fabric::new(world.clone(), fcfg, &rng);
        let sink = Rnic::new(&fabric, NodeId(0), RnicConfig::default(), rng.fork("sink"));
        let pd = sink.alloc_pd();
        let target = sink.reg_mr(
            &pd,
            1 << 20,
            AccessFlags::FULL,
            PageKind::Anonymous,
            false,
            false,
        );
        let mut senders = Vec::new();
        for i in 1..13u32 {
            let nic = Rnic::new(
                &fabric,
                NodeId(i),
                RnicConfig::default(),
                rng.fork(&format!("s{i}")),
            );
            let spd = nic.alloc_pd();
            let cq = nic.create_cq(1 << 14);
            let qp = nic.create_qp(&spd, cq.clone(), cq, QpCaps::default(), None);
            let scq = sink.create_cq(1 << 14);
            let sqp = sink.create_qp(&pd, scq.clone(), scq, QpCaps::default(), None);
            Rnic::connect_pair(&nic, &qp, &sink, &sqp).expect("fresh QPs wire cleanly");
            for w in 0..20u64 {
                nic.post_send(
                    &qp,
                    SendWr::write(w, Payload::Zero(128 * 1024), target.addr, target.rkey),
                )
                .unwrap();
            }
            senders.push(nic);
        }
        world.run_for(Dur::secs(5));
        let c = fabric.stats().snapshot();
        assert_eq!(
            c.pause_frames, c.resume_frames,
            "seed {seed}: every XOFF resumed"
        );
        assert_eq!(c.drops, 0, "lossless class stayed lossless");
        for i in 1..13u32 {
            assert!(
                !fabric.host_port(NodeId(i)).is_paused(3),
                "seed {seed}: no port left paused"
            );
        }
        assert_eq!(fabric.buffered_bytes(), 0, "all queues drained");
    }
}

/// The QP context cache behaves as an LRU: hit rate is perfect within
/// capacity and degrades beyond it.
#[test]
fn qp_cache_hit_rates() {
    let run = |n_qps: u32| -> f64 {
        let world = World::new();
        let rng = SimRng::new(5);
        let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
        let mut cfg = RnicConfig::default();
        cfg.qp_cache_entries = 128;
        let a = Rnic::new(&fabric, NodeId(0), cfg.clone(), rng.fork("a"));
        let b = Rnic::new(&fabric, NodeId(1), cfg, rng.fork("b"));
        let pda = a.alloc_pd();
        let pdb = b.alloc_pd();
        let cqa = a.create_cq(1 << 14);
        let cqb = b.create_cq(1 << 14);
        let caps = QpCaps {
            max_send_wr: 64,
            max_recv_wr: 32,
        };
        let mut qps = Vec::new();
        for _ in 0..n_qps {
            let qa = a.create_qp(&pda, cqa.clone(), cqa.clone(), caps, None);
            let qb = b.create_qp(&pdb, cqb.clone(), cqb.clone(), caps, None);
            Rnic::connect_pair(&a, &qa, &b, &qb).expect("fresh QPs wire cleanly");
            for i in 0..4 {
                qb.post_recv(RecvWr::new(i, 0, 4096, 0)).unwrap();
            }
            qps.push((qa, qb));
        }
        // The first pass cold-misses; enough later passes amortize it out
        // of the aggregate rate.
        for round in 0..16 {
            for (qa, qb) in &qps {
                let _ = qb.post_recv(RecvWr::new(99, 0, 4096, 0));
                a.post_send(qa, SendWr::send(round, Payload::Zero(32)).unsignaled())
                    .unwrap();
            }
            world.run_for(Dur::millis(20));
        }
        let st = a.stats();
        st.qp_cache_hits as f64 / (st.qp_cache_hits + st.qp_cache_misses) as f64
    };
    let small = run(32); // well under the 128-entry cache
    let large = run(512); // 4x over
    assert!(small > 0.9, "small working set hits: {small}");
    assert!(large < 0.3, "thrashing working set misses: {large}");
}
