fn leak(seq: u64) {
    xrdma_telemetry::hub::emit_raw(EventKind::SeqDuplicate { seq });
}
