//! Quickstart: the ping-pong program of §III, in ~40 lines of X-RDMA API
//! (the paper's pitch: ~2000 LOC of raw verbs shrink to ~40 LOC).
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use xrdma_core::{XrdmaChannel, XrdmaConfig, XrdmaContext};
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
use xrdma_sim::{Dur, SimRng, World};

fn main() {
    // ---- world setup: 2 hosts under one ToR ---------------------------
    let world = World::new();
    let rng = SimRng::new(42);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));

    // ---- the ~40 lines of application code ----------------------------
    let server = XrdmaContext::on_new_node(
        &fabric,
        &cm,
        NodeId(1),
        RnicConfig::default(),
        XrdmaConfig::default(),
        &rng,
    );
    server.listen(7, |channel| {
        channel.set_on_request(|ch, msg, token| {
            println!("[server] got {} bytes: {:?}", msg.len, msg.body());
            ch.respond(token, Bytes::from_static(b"pong")).unwrap();
        });
    });

    let client = XrdmaContext::on_new_node(
        &fabric,
        &cm,
        NodeId(0),
        RnicConfig::default(),
        XrdmaConfig::default(),
        &rng,
    );
    let channel: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
    let c = channel.clone();
    let w = world.clone();
    client.connect(NodeId(1), 7, move |r| {
        let ch = r.expect("connect");
        println!("[client] connected at t={}", w.now());
        let w2 = w.clone();
        let t0 = w.now();
        ch.send_request(Bytes::from_static(b"ping"), move |_, resp| {
            println!(
                "[client] got {:?} after {} (round trip)",
                resp.body(),
                w2.now().since(t0)
            );
        })
        .unwrap();
        *c.borrow_mut() = Some(ch);
    });

    world.run_for(Dur::millis(50));

    let ch = channel.borrow().clone().expect("channel up");
    let stats = ch.stats();
    println!(
        "[client] channel stats: sent={} received={} rpcs_completed={}",
        stats.msgs_sent, stats.msgs_received, stats.rpcs_completed
    );
    assert_eq!(stats.rpcs_completed, 1);
    println!("quickstart OK");
}
