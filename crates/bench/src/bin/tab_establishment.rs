//! §VII-C / §III Issue 3: connection-establishment latencies.
//!
//! Paper numbers:
//! * isolated `rdma_cm` connect: 3946 µs fresh → 2451 µs with the QP
//!   cache (−38 %);
//! * 4096 connections: ~3 s with X-RDMA vs ~10 s with plain `rdma_cm`;
//! * TCP connect ≈ 100 µs vs RDMA ≈ 4 ms.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use xrdma_bench::scenarios::{ctx, net};
use xrdma_bench::Report;
use xrdma_core::XrdmaConfig;
use xrdma_fabric::{FabricConfig, NodeId};
use xrdma_rnic::tcp::{TcpConfig, TcpStack};
use xrdma_sim::{Dur, Time};

/// Measure one isolated connect, fresh or via warm caches.
fn isolated_connect_us(warm: bool, seed: u64) -> f64 {
    let n = net(FabricConfig::pair(), seed);
    let mut cfg = XrdmaConfig::default();
    cfg.qp_cache = 8;
    let client = ctx(&n, 0, cfg.clone());
    let server = ctx(&n, 1, cfg);
    server.listen(7, |_| {});
    if warm {
        // Prime both QP caches and the resolution cache with a
        // connect/close cycle...
        let done: Rc<RefCell<Option<Rc<xrdma_core::XrdmaChannel>>>> = Rc::new(RefCell::new(None));
        let d = done.clone();
        client.connect(NodeId(1), 7, move |r| *d.borrow_mut() = Some(r.unwrap()));
        n.world.run_for(Dur::millis(20));
        done.borrow().as_ref().unwrap().close();
        n.world.run_for(Dur::millis(5));
        // ...but measure the *pure QP-cache* effect at the paper's
        // operating point (an isolated connect resolves from scratch).
        n.cm.forget_resolution();
    }
    let t0 = n.world.now();
    let t_done = Rc::new(Cell::new(Time::ZERO));
    let td = t_done.clone();
    let w = n.world.clone();
    client.connect(NodeId(1), 7, move |r| {
        r.expect("connect");
        td.set(w.now());
    });
    n.world.run_for(Dur::millis(50));
    t_done.get().since(t0).as_micros_f64()
}

/// Time a chain of `count` sequential connects from one node (the storm
/// regime: resolution cached after the first).
fn storm_secs(count: u32, warm: bool, seed: u64) -> f64 {
    let n = net(FabricConfig::rack(2), seed);
    let mut cfg = XrdmaConfig::default();
    cfg.qp_cache = count as usize + 8;
    let client = ctx(&n, 0, cfg.clone());
    let server = ctx(&n, 1, cfg);
    server.listen(7, |_| {});
    if warm {
        // Prime pools: open & close `count` channels first.
        let open: Rc<RefCell<Vec<Rc<xrdma_core::XrdmaChannel>>>> =
            Rc::new(RefCell::new(Vec::new()));
        fn chain(
            client: Rc<xrdma_core::XrdmaContext>,
            open: Rc<RefCell<Vec<Rc<xrdma_core::XrdmaChannel>>>>,
            left: u32,
        ) {
            if left == 0 {
                return;
            }
            let c2 = client.clone();
            let o2 = open.clone();
            client.connect(NodeId(1), 7, move |r| {
                if let Ok(ch) = r {
                    o2.borrow_mut().push(ch);
                }
                chain(c2, o2, left - 1);
            });
        }
        chain(client.clone(), open.clone(), count);
        n.world.run_for(Dur::secs(60));
        for ch in open.borrow().iter() {
            ch.close();
        }
        n.world.run_for(Dur::millis(50));
    }

    let t0 = n.world.now();
    let done = Rc::new(Cell::new(Time::ZERO));
    let remaining = Rc::new(Cell::new(count));
    fn chain2(
        client: Rc<xrdma_core::XrdmaContext>,
        remaining: Rc<Cell<u32>>,
        done: Rc<Cell<Time>>,
    ) {
        if remaining.get() == 0 {
            done.set(client.world().now());
            return;
        }
        remaining.set(remaining.get() - 1);
        let c2 = client.clone();
        client.connect(NodeId(1), 7, move |r| {
            r.expect("storm connect");
            chain2(c2.clone(), remaining, done);
        });
    }
    chain2(client, remaining, done.clone());
    n.world.run_for(Dur::secs(120));
    done.get().since(t0).as_secs_f64()
}

/// TCP connect latency.
fn tcp_connect_us(seed: u64) -> f64 {
    let n = net(FabricConfig::pair(), seed);
    let a = ctx(&n, 0, XrdmaConfig::default());
    let b = ctx(&n, 1, XrdmaConfig::default());
    let ta = TcpStack::new(&n.fabric, a.rnic(), TcpConfig::default());
    let tb = TcpStack::new(&n.fabric, b.rnic(), TcpConfig::default());
    tb.listen(9, |_| {});
    let t0 = n.world.now();
    let t_done = Rc::new(Cell::new(Time::ZERO));
    let td = t_done.clone();
    let w = n.world.clone();
    ta.connect(NodeId(1), 9, move |_| td.set(w.now()));
    n.world.run_for(Dur::millis(10));
    t_done.get().since(t0).as_micros_f64()
}

fn main() {
    let fresh = isolated_connect_us(false, 1);
    let reuse = isolated_connect_us(true, 1);
    let tcp = tcp_connect_us(1);
    // 512-connection storm (scaled from 4096 to keep the run snappy; the
    // per-connection cost is what matters).
    let count = 512;
    let warm_storm = storm_secs(count, true, 2);
    let cold_storm = storm_secs(count, false, 2);
    let scale = 4096.0 / count as f64;

    let mut rep = Report::new(
        "tab_establishment",
        "connection-establishment latency: isolated, storm, and TCP",
    );
    rep.row(
        "isolated fresh connect",
        "3946µs",
        format!("{fresh:.0}µs"),
        (3300.0..4700.0).contains(&fresh),
    );
    rep.row(
        "isolated connect with QP cache",
        "2451µs (-38%)",
        format!("{reuse:.0}µs ({:.0}%)", (reuse / fresh - 1.0) * 100.0),
        (2000.0..2950.0).contains(&reuse),
    );
    rep.row(
        "TCP connect",
        "~100µs",
        format!("{tcp:.0}µs"),
        (80.0..200.0).contains(&tcp),
    );
    rep.row(
        "4096-conn storm, X-RDMA (extrapolated)",
        "~3 s",
        format!(
            "{:.1} s ({count} conns took {warm_storm:.2}s)",
            warm_storm * scale
        ),
        (1.5..6.0).contains(&(warm_storm * scale)),
    );
    rep.row(
        "4096-conn storm, rdma_cm only (extrapolated)",
        "~10 s",
        format!(
            "{:.1} s ({count} conns took {cold_storm:.2}s)",
            cold_storm * scale
        ),
        (6.0..16.0).contains(&(cold_storm * scale)),
    );
    rep.row(
        "storm speedup from caches",
        "~3.3x",
        format!("{:.1}x", cold_storm / warm_storm),
        cold_storm / warm_storm > 2.0,
    );
    rep.finish();
}
