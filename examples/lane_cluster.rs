//! Lane cluster: the real middleware stack on the threaded shard engine
//! (DESIGN.md §3.15) — a grouped incast across per-host `Send` lanes,
//! rendered by `xr-stat`'s lane panel.
//!
//! Runs the same scenario twice (serial inline vs 4 threaded shards) and
//! asserts the digests are byte-identical before printing per-lane
//! residency, the busiest/idlest lanes, and the host application counters.
//!
//! Run with: `cargo run --example lane_cluster`

use xrdma_analysis::xrstat;
use xrdma_core::lane::{grouped_incast, spans_jsonl, IncastSpec};
use xrdma_sim::Time;

const HORIZON: Time = Time(3_000_000); // 3 ms of virtual time

fn run(shards: usize) -> (String, xrdma_core::lane::HostWorld) {
    let mut spec = IncastSpec::full(32, shards, 7);
    spec.group = 8; // 4 racks of 8 so every shard count owns whole racks
    let mut w = grouped_incast(spec);
    w.run_until(HORIZON);
    (w.digest(), w)
}

fn main() {
    let (serial_digest, _) = run(1);
    let (threaded_digest, w) = run(4);
    assert_eq!(
        serial_digest, threaded_digest,
        "serial and threaded digests must be byte-identical"
    );
    println!(
        "[lane_cluster] 32 hosts, 4 racks, serial == 4-shard digest ({} bytes)",
        threaded_digest.len()
    );

    let stats = w.lane_stats();
    print!("{}", xrstat::render_lane_panel(&stats));

    let (mut done, mut cnps, mut retx) = (0u64, 0u64, 0u64);
    for lane in w.lanes() {
        let h = &lane.state;
        done += h.app.rpcs_done;
        cnps += h.rnic.qps.iter().map(|q| q.cnps_rx).sum::<u64>();
        retx += h.rnic.qps.iter().map(|q| q.retransmissions).sum::<u64>();
    }
    let spans = spans_jsonl(&w).lines().count();
    println!("[lane_cluster] rpcs_done={done} cnps={cnps} retx={retx} spans={spans}");
    assert!(done > 0, "incast must complete RPCs");
    println!("lane_cluster OK");
}
