//! Fixture self-tests for the lint engine, plus the workspace meta-test.
//!
//! Every rule has one positive and one negative fixture under
//! `tests/fixtures/<rule-name>/{pos,neg}.rs`. The fixtures are *data*
//! (read at test time, never compiled), so they can reference types that
//! don't exist and plant contract violations without tripping the
//! workspace's own build or lint runs.
//!
//! The meta-test at the bottom is the enforcement loop closing on
//! itself: the live workspace must be diagnostic-clean against the
//! committed baseline, with zero unused allows — the same check
//! `scripts/ci.sh` runs through the CLI.

use std::path::{Path, PathBuf};

use xrdma_lint::{
    analyze_source, analyze_workspace, json, FileReport, Rule, RuleSet, API_RULES, FABRIC_RULES,
    SIM_RULES,
};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The rule set and synthetic analysis path each rule's fixtures run
/// under. P1 only applies to hot-path file names, D5 only to API crates;
/// everything else runs as a sim-crate source.
fn harness(rule: Rule) -> (RuleSet, &'static str) {
    match rule {
        Rule::UnwrapInApi => (API_RULES, "crates/core/src/fixture.rs"),
        Rule::HotPathAlloc => (FABRIC_RULES, "crates/fabric/src/port.rs"),
        _ => (SIM_RULES, "crates/sim/src/fixture.rs"),
    }
}

fn run_fixture(rule: Rule, which: &str) -> FileReport {
    let (rules, path) = harness(rule);
    let src = fixture(&format!("{}/{which}.rs", rule.name()));
    analyze_source(Path::new(path), &src, rules)
}

#[test]
fn every_rule_fires_on_its_positive_fixture() {
    for rule in Rule::ALL {
        let report = run_fixture(rule, "pos");
        if rule == Rule::UnusedAllow {
            assert!(
                !report.unused_allows.is_empty(),
                "{}: positive fixture produced no unused-allow finding",
                rule.name()
            );
        } else {
            assert!(
                report.violations.iter().any(|v| v.rule == rule),
                "{}: positive fixture produced no {} finding: {:?}",
                rule.name(),
                rule.name(),
                report.violations
            );
        }
    }
}

#[test]
fn every_rule_is_silent_on_its_negative_fixture() {
    for rule in Rule::ALL {
        let report = run_fixture(rule, "neg");
        assert!(
            report.violations.is_empty(),
            "{}: negative fixture produced findings: {:?}",
            rule.name(),
            report.violations
        );
        assert!(
            report.unused_allows.is_empty(),
            "{}: negative fixture produced unused allows: {:?}",
            rule.name(),
            report.unused_allows
        );
        assert!(
            report.malformed_allows.is_empty(),
            "{}: negative fixture produced malformed allows: {:?}",
            rule.name(),
            report.malformed_allows
        );
    }
}

/// Satellite regression: patterns inside string literals, doc comments,
/// and (nested) block comments never fire — the PR-1 false-positive
/// class. Run under the fabric hot-path harness so even the P1 patterns
/// are armed.
#[test]
fn stripping_regressions_stay_silent() {
    for file in ["strings.rs", "doc_comments.rs", "block_comments.rs"] {
        let src = fixture(&format!("stripping/{file}"));
        let report = analyze_source(Path::new("crates/fabric/src/port.rs"), &src, FABRIC_RULES);
        assert!(
            report.violations.is_empty(),
            "stripping/{file}: {:?}",
            report.violations
        );
        assert!(
            report.unused_allows.is_empty() && report.malformed_allows.is_empty(),
            "stripping/{file}: annotation text inside a literal was parsed as an allow"
        );
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

/// The live workspace is diagnostic-clean: zero diagnostics outside the
/// committed baseline, zero stale baseline entries, zero unused allows,
/// zero malformed annotations.
#[test]
fn live_workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let report = analyze_workspace(&root);

    assert!(
        report.unused_allows.is_empty(),
        "stale allow annotations (A1): {:?}",
        report.unused_allows
    );
    assert!(
        report.malformed_allows.is_empty(),
        "malformed allow annotations: {:?}",
        report.malformed_allows
    );

    let baseline_path = root.join("crates/lint/lint.baseline");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let entries = json::parse_baseline(&text).expect("well-formed baseline");
    let diff = json::diff_baseline(&report.violations, &entries);

    let new: Vec<_> = report
        .violations
        .iter()
        .zip(&diff.baselined)
        .filter(|(_, b)| !**b)
        .map(|(v, _)| v)
        .collect();
    assert!(new.is_empty(), "diagnostics not in the baseline: {new:#?}");
    assert!(
        diff.stale.is_empty(),
        "baseline entries matching no finding (paid-down debt — delete them): {:?}",
        diff.stale
    );
}

/// Two full, independent analysis passes render byte-identical JSON —
/// the property that lets `results/lint.json` sit under the CI
/// golden-diff gate.
#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = workspace_root();
    let baseline = std::fs::read_to_string(root.join("crates/lint/lint.baseline"))
        .ok()
        .map(|t| json::parse_baseline(&t).expect("well-formed baseline"))
        .unwrap_or_default();

    let a = {
        let report = analyze_workspace(&root);
        let diff = json::diff_baseline(&report.violations, &baseline);
        json::render_json(&report, &diff)
    };
    let b = {
        let report = analyze_workspace(&root);
        let diff = json::diff_baseline(&report.violations, &baseline);
        json::render_json(&report, &diff)
    };
    assert_eq!(a, b);
}
