//! Two-pass workspace symbol table.
//!
//! Pass one (per file) collects the items the structural rules need:
//! struct and enum definitions with their field/payload types, `type`
//! aliases, and manual `impl Ord for T` blocks. Pass two — after every
//! scanned file has been absorbed — answers workspace-level questions:
//!
//! * **S1 `non-send-shard-state`** — compute the set of types reachable
//!   from the shard roots (`World` and any `*Lane` struct) by following
//!   field types through aliases, and flag every field along the way whose
//!   type is `Rc<_>`, `RefCell<_>` or `*mut _`. Those are exactly the
//!   types that cannot migrate to a rayon shard without a redesign.
//! * **S3 `unordered-cross-shard-merge`** (the `impl Ord` half) — every
//!   manual ordering of an event-entry type (a struct with a `Time`-typed
//!   field) must break ties on a `seq` field, or same-instant events merge
//!   in nondeterministic order across shards.
//! * **Alias resolution for D3** — a field typed through an alias of
//!   `HashMap`/`HashSet` (e.g. `type QpMap = HashMap<…>`) is recognized as
//!   a hash container wherever the alias is used.
//!
//! Name resolution is by simple identifier, workspace-wide; the first
//! definition wins (the walk order is sorted, so collisions resolve
//! deterministically). That is deliberately coarse — the lint pass trades
//! full path resolution for zero dependencies — and has been accurate on
//! this workspace, where type names are unique.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::lexer::{TokKind, Token};
use crate::scope::Flags;

/// One struct field or enum-variant payload slot.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    pub name: String,
    /// Type tokens, as lexed (idents, puncts).
    pub ty: Vec<Token>,
    pub line: u32,
}

/// A struct or enum definition.
#[derive(Clone, Debug)]
pub struct TypeInfo {
    pub name: String,
    pub file: PathBuf,
    pub line: u32,
    pub is_pub: bool,
    pub fields: Vec<FieldInfo>,
}

/// A manual `impl Ord for T` block.
#[derive(Clone, Debug)]
pub struct ImplOrd {
    pub ty: String,
    pub file: PathBuf,
    pub line: u32,
    /// Every identifier appearing in the impl body — the tie-break check
    /// only needs to know whether `seq` is consulted at all.
    pub body_idents: BTreeSet<String>,
}

/// The workspace symbol table.
#[derive(Default)]
pub struct Symbols {
    pub types: BTreeMap<String, TypeInfo>,
    /// `type Alias = …;` right-hand sides, as tokens.
    pub aliases: BTreeMap<String, Vec<Token>>,
    pub impl_ords: Vec<ImplOrd>,
}

/// Shard-root predicate: `World` plus any per-shard event-lane struct.
pub fn is_shard_root(name: &str) -> bool {
    name == "World" || name.ends_with("Lane")
}

impl Symbols {
    /// Absorb one file's items. `flags` must be parallel to `tokens`;
    /// items inside `#[cfg(test)]` regions are skipped.
    pub fn absorb(&mut self, file: &Path, tokens: &[Token], flags: &[Flags]) {
        let mut i = 0;
        while i < tokens.len() {
            if flags[i].test {
                i += 1;
                continue;
            }
            let t = &tokens[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "struct" | "enum" => {
                    let is_enum = t.text == "enum";
                    let is_pub = i > 0 && tokens[i - 1].is_ident("pub");
                    let Some(name_tok) = tokens.get(i + 1) else {
                        break;
                    };
                    if name_tok.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    let name = name_tok.text.clone();
                    let line = name_tok.line;
                    let mut j = i + 2;
                    j = skip_generics(tokens, j);
                    let fields = if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                        if is_enum {
                            parse_enum_variants(tokens, j)
                        } else {
                            parse_named_fields(tokens, j)
                        }
                    } else if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                        parse_tuple_fields(tokens, j)
                    } else {
                        Vec::new()
                    };
                    self.types.entry(name.clone()).or_insert(TypeInfo {
                        name,
                        file: file.to_path_buf(),
                        line,
                        is_pub,
                        fields,
                    });
                    i = j;
                }
                "type" => {
                    // `type Alias = …;` (also collects associated types,
                    // which are harmless in the alias map).
                    if let (Some(name_tok), true) = (
                        tokens.get(i + 1),
                        tokens
                            .get(i + 2)
                            .map(|t| t.is_punct('=') || t.is_punct('<'))
                            .unwrap_or(false),
                    ) {
                        let mut j = skip_generics(tokens, i + 2);
                        if tokens.get(j).is_some_and(|t| t.is_punct('=')) {
                            let start = j + 1;
                            while j < tokens.len() && !tokens[j].is_punct(';') {
                                j += 1;
                            }
                            self.aliases
                                .entry(name_tok.text.clone())
                                .or_insert_with(|| tokens[start..j].to_vec());
                            i = j;
                        }
                    }
                }
                "impl" => {
                    // `impl [<…>] [path::]Ord for T … {`
                    let mut j = skip_generics(tokens, i + 1);
                    let mut saw_ord = false;
                    let mut ty = None;
                    while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                        if tokens[j].is_ident("Ord") {
                            saw_ord = true;
                        } else if tokens[j].is_ident("for") && saw_ord {
                            ty = tokens.get(j + 1).filter(|t| t.kind == TokKind::Ident);
                            break;
                        }
                        j += 1;
                    }
                    if let Some(ty) = ty {
                        let ty_name = ty.text.clone();
                        let line = tokens[i].line;
                        while j < tokens.len() && !tokens[j].is_punct('{') {
                            j += 1;
                        }
                        let end = crate::scope_match_brace(tokens, j);
                        let body_idents = tokens[j..end.min(tokens.len())]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone())
                            .collect();
                        self.impl_ords.push(ImplOrd {
                            ty: ty_name,
                            file: file.to_path_buf(),
                            line,
                            body_idents,
                        });
                        i = end;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Does this type-token slice name a hash container, directly or
    /// through an alias?
    pub fn is_hash_type(&self, ty: &[Token]) -> bool {
        ty.iter().any(|t| {
            t.kind == TokKind::Ident
                && (t.text == "HashMap"
                    || t.text == "HashSet"
                    || self.aliases.get(&t.text).is_some_and(|rhs| {
                        rhs.iter()
                            .any(|r| r.is_ident("HashMap") || r.is_ident("HashSet"))
                    }))
        })
    }

    /// S1: walk the reachability graph from the shard roots, returning
    /// `(type, field, root, line, file, rendered type)` for every
    /// non-`Send`-safe field on the way.
    pub fn non_send_shard_fields(&self) -> Vec<NonSendField> {
        let mut out = Vec::new();
        let mut visited: BTreeSet<String> = BTreeSet::new();
        // Deterministic BFS: roots in name order, then discovery order.
        let mut queue: Vec<(String, String)> = self
            .types
            .keys()
            .filter(|n| is_shard_root(n))
            .map(|n| (n.clone(), n.clone()))
            .collect();
        while let Some((name, root)) = queue.pop() {
            if !visited.insert(name.clone()) {
                continue;
            }
            let Some(info) = self.types.get(&name) else {
                continue;
            };
            for field in &info.fields {
                if let Some(pat) = non_send_pattern(&field.ty) {
                    out.push(NonSendField {
                        ty: name.clone(),
                        field: field.name.clone(),
                        root: root.clone(),
                        pattern: pat,
                        file: info.file.clone(),
                        line: field.line,
                        rendered: render_type(&field.ty),
                    });
                }
                // Follow referenced types (resolving one alias level).
                for t in &field.ty {
                    if t.kind != TokKind::Ident {
                        continue;
                    }
                    let mut refs = vec![t.text.clone()];
                    if let Some(rhs) = self.aliases.get(&t.text) {
                        refs.extend(
                            rhs.iter()
                                .filter(|r| r.kind == TokKind::Ident)
                                .map(|r| r.text.clone()),
                        );
                    }
                    for r in refs {
                        if self.types.contains_key(&r) && !visited.contains(&r) {
                            queue.push((r, root.clone()));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line, &a.field).cmp(&(&b.file, b.line, &b.field)));
        out
    }

    /// S3 (ordering half): manual `impl Ord` blocks for event-entry types
    /// (structs with a `Time` field) that never consult `seq`.
    pub fn unordered_event_ords(&self) -> Vec<&ImplOrd> {
        self.impl_ords
            .iter()
            .filter(|io| {
                let Some(info) = self.types.get(&io.ty) else {
                    return false;
                };
                let has_time = info
                    .fields
                    .iter()
                    .any(|f| f.ty.iter().any(|t| t.is_ident("Time")));
                has_time && !io.body_idents.contains("seq")
            })
            .collect()
    }
}

/// One S1 finding.
pub struct NonSendField {
    pub ty: String,
    pub field: String,
    pub root: String,
    pub pattern: &'static str,
    pub file: PathBuf,
    pub line: u32,
    pub rendered: String,
}

/// Which non-`Send` pattern a type-token slice contains, if any.
fn non_send_pattern(ty: &[Token]) -> Option<&'static str> {
    for (k, t) in ty.iter().enumerate() {
        if t.is_ident("Rc") && ty.get(k + 1).is_some_and(|n| n.is_punct('<')) {
            return Some("Rc<_>");
        }
        if t.is_ident("RefCell") && ty.get(k + 1).is_some_and(|n| n.is_punct('<')) {
            return Some("RefCell<_>");
        }
        if t.is_punct('*') && ty.get(k + 1).is_some_and(|n| n.is_ident("mut")) {
            return Some("*mut _");
        }
    }
    None
}

/// Compact display form of a type-token slice for diagnostics.
pub fn render_type(ty: &[Token]) -> String {
    let mut out = String::new();
    let mut prev_ident = false;
    for t in ty {
        let ident_like = matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Lifetime);
        if ident_like && prev_ident {
            out.push(' ');
        }
        match t.kind {
            TokKind::Lifetime => {
                out.push('\'');
                out.push_str(&t.text);
            }
            TokKind::Str => {
                out.push('"');
                out.push_str(&t.text);
                out.push('"');
            }
            _ => out.push_str(&t.text),
        }
        prev_ident = ident_like;
    }
    out
}

/// Skip a balanced `<…>` generic list if one starts at `j`.
fn skip_generics(tokens: &[Token], j: usize) -> usize {
    if !tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        return j;
    }
    let mut depth = 0;
    let mut k = j;
    while k < tokens.len() {
        if tokens[k].is_punct('<') {
            depth += 1;
        } else if tokens[k].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    tokens.len()
}

/// Parse `{ field: Ty, … }` starting at the `{`; returns the fields.
fn parse_named_fields(tokens: &[Token], open: usize) -> Vec<FieldInfo> {
    let end = crate::scope_match_brace(tokens, open);
    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < end {
        // Skip attributes on the field.
        while tokens.get(k).is_some_and(|t| t.is_punct('#')) {
            let b = k + 1;
            if tokens.get(b).is_some_and(|t| t.is_punct('[')) {
                k = crate::scope_match_delim(tokens, b, '[', ']') + 1;
            } else {
                k += 1;
            }
        }
        if tokens.get(k).is_some_and(|t| t.is_ident("pub")) {
            k += 1;
            if tokens.get(k).is_some_and(|t| t.is_punct('(')) {
                k = crate::scope_match_delim(tokens, k, '(', ')') + 1;
            }
        }
        let Some(name_tok) = tokens.get(k) else { break };
        if name_tok.kind != TokKind::Ident || !tokens.get(k + 1).is_some_and(|t| t.is_punct(':')) {
            k += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let start = k + 2;
        let stop = type_end(tokens, start, end);
        fields.push(FieldInfo {
            name,
            ty: tokens[start..stop].to_vec(),
            line,
        });
        k = stop + 1;
    }
    fields
}

/// Parse `( Ty, Ty )` tuple-struct fields starting at the `(`.
fn parse_tuple_fields(tokens: &[Token], open: usize) -> Vec<FieldInfo> {
    let end = crate::scope_match_delim(tokens, open, '(', ')');
    let mut fields = Vec::new();
    let mut k = open + 1;
    let mut idx = 0;
    while k < end {
        if tokens.get(k).is_some_and(|t| t.is_ident("pub")) {
            k += 1;
            continue;
        }
        let start = k;
        let stop = type_end(tokens, start, end);
        if stop > start {
            fields.push(FieldInfo {
                name: idx.to_string(),
                ty: tokens[start..stop].to_vec(),
                line: tokens[start].line,
            });
            idx += 1;
        }
        k = stop + 1;
    }
    fields
}

/// Parse enum variants starting at the `{`: tuple payload types and named
/// fields both become [`FieldInfo`] entries carrying the variant name.
fn parse_enum_variants(tokens: &[Token], open: usize) -> Vec<FieldInfo> {
    let end = crate::scope_match_brace(tokens, open);
    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < end {
        while tokens.get(k).is_some_and(|t| t.is_punct('#')) {
            let b = k + 1;
            if tokens.get(b).is_some_and(|t| t.is_punct('[')) {
                k = crate::scope_match_delim(tokens, b, '[', ']') + 1;
            } else {
                k += 1;
            }
        }
        let Some(name_tok) = tokens.get(k) else { break };
        if name_tok.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let vname = name_tok.text.clone();
        let vline = name_tok.line;
        k += 1;
        if tokens.get(k).is_some_and(|t| t.is_punct('(')) {
            let close = crate::scope_match_delim(tokens, k, '(', ')');
            fields.push(FieldInfo {
                name: vname,
                ty: tokens[k + 1..close.min(end)].to_vec(),
                line: vline,
            });
            k = close + 1;
        } else if tokens.get(k).is_some_and(|t| t.is_punct('{')) {
            let close = crate::scope_match_brace(tokens, k);
            for f in parse_named_fields(tokens, k) {
                fields.push(FieldInfo {
                    name: format!("{vname}.{}", f.name),
                    ty: f.ty,
                    line: f.line,
                });
            }
            k = close + 1;
        }
        // Skip discriminant `= expr` and the trailing comma.
        while k < end && !tokens[k].is_punct(',') {
            k += 1;
        }
        k += 1;
    }
    fields
}

/// End index of a type starting at `start`: the first `,` or `;` at zero
/// `<>`/`()`/`[]` nesting, or `stop`.
fn type_end(tokens: &[Token], start: usize, stop: usize) -> usize {
    let mut depth = 0i32;
    let mut k = start;
    while k < stop {
        let t = &tokens[k];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'<' | b'(' | b'[' => depth += 1,
                b'>' if !(k > 0 && tokens[k - 1].is_punct('-')) => depth -= 1,
                b')' | b']' => depth -= 1,
                b',' | b';' if depth <= 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    stop
}
