//! End-to-end tests of the analysis framework over live middleware: the
//! Table II bug-type → tracking-method matrix in action.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use xrdma_analysis::clocksync::ClockSync;
use xrdma_analysis::monitor::Monitor;
use xrdma_analysis::xrperf::{FlowModel, XrPerf};
use xrdma_analysis::{xrstat, Filter, MockTransport, Tracer, XrAdm, XrPing};
use xrdma_core::{XrdmaChannel, XrdmaConfig, XrdmaContext};
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::tcp::{TcpConfig, TcpStack};
use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
use xrdma_sim::{Dur, SimRng, World};

struct Net {
    world: Rc<World>,
    fabric: Rc<Fabric>,
    cm: Rc<ConnManager>,
    rng: SimRng,
}

fn net(fcfg: FabricConfig, seed: u64) -> Net {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), fcfg, &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    Net {
        world,
        fabric,
        cm,
        rng,
    }
}

fn ctx(net: &Net, node: u32, cfg: XrdmaConfig) -> Rc<XrdmaContext> {
    XrdmaContext::on_new_node(
        &net.fabric,
        &net.cm,
        NodeId(node),
        RnicConfig::default(),
        cfg,
        &net.rng,
    )
}

fn connect(
    net: &Net,
    client: &Rc<XrdmaContext>,
    server: &Rc<XrdmaContext>,
    svc: u16,
) -> (Rc<XrdmaChannel>, Rc<XrdmaChannel>) {
    let sch: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
    let s2 = sch.clone();
    server.listen(svc, move |ch| *s2.borrow_mut() = Some(ch));
    let cch: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
    let c2 = cch.clone();
    client.connect(NodeId(server.node().0), svc, move |r| {
        *c2.borrow_mut() = Some(r.unwrap());
    });
    net.world.run_for(Dur::millis(20));
    let c = cch.borrow().clone().unwrap();
    let s = sch.borrow().clone().unwrap();
    (c, s)
}

#[test]
fn clocksync_estimates_injected_skew() {
    let net = net(FabricConfig::pair(), 1);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    // Server clock runs 5 µs ahead of the client.
    server.clock_skew_ns.set(5_000);
    let (c, s) = connect(&net, &client, &server, 7);
    ClockSync::serve(&s);
    let cs = ClockSync::new();
    cs.probe(&c, 16);
    net.world.run_for(Dur::millis(50));
    assert_eq!(cs.sample_count(), 16);
    let est = cs.offset_ns().unwrap();
    assert!(
        (est - 5_000).abs() < 1_500,
        "offset estimate {est} vs true 5000"
    );
}

#[test]
fn tracer_decomposes_latency_with_clock_correction() {
    let mut cfg = XrdmaConfig::default();
    cfg.msg_mode = xrdma_core::MsgMode::ReqRsp;
    cfg.trace_sample_mask = 0;
    let net = net(FabricConfig::pair(), 2);
    let client = ctx(&net, 0, cfg.clone());
    let server = ctx(&net, 1, cfg);
    server.clock_skew_ns.set(50_000); // badly skewed server
    let (c, s) = connect(&net, &client, &server, 7);
    s.set_on_request(|ch, _m, tok| {
        ch.respond_size(tok, 64).ok();
    });

    // First, sync clocks through the service.
    ClockSync::serve(&s);
    let cs = ClockSync::new();
    cs.probe(&c, 8);
    net.world.run_for(Dur::millis(20));
    let offset = cs.offset_ns().unwrap();

    // Re-arm the echo handler (serve() replaced it) and trace real traffic.
    s.set_on_request(|ch, _m, tok| {
        ch.respond_size(tok, 64).ok();
    });
    let tracer = Tracer::new(offset);
    client.set_instrument(tracer.clone());
    let done = Rc::new(Cell::new(0));
    for _ in 0..50 {
        let d = done.clone();
        c.send_request_size(256, move |_, _| d.set(d.get() + 1))
            .unwrap();
    }
    net.world.run_for(Dur::millis(50));
    assert_eq!(done.get(), 50);
    assert_eq!(tracer.record_count(), 50);
    let oneway = tracer.mean_oneway_ns();
    let rtt = tracer.mean_rtt_ns();
    assert!(oneway > 1000.0 && oneway < rtt, "oneway {oneway} rtt {rtt}");
    assert!(
        tracer.network_dominated(),
        "clean network: wire time dominates"
    );
}

#[test]
fn poll_gap_watchdog_finds_slow_application() {
    // The §VII-D Pangu case study: an application handler grabs a slow
    // lock; the poll-gap watchdog must spot it.
    let mut cfg = XrdmaConfig::default();
    cfg.polling_warn_cycle = Dur::micros(500);
    cfg.slow_threshold = Dur::micros(300);
    let net = net(FabricConfig::pair(), 3);
    let client = ctx(&net, 0, cfg.clone());
    let server = ctx(&net, 1, cfg);
    let (c, s) = connect(&net, &client, &server, 7);
    let tracer = Tracer::new(0);
    server.set_instrument(tracer.clone());
    // Slow handler: models the allocator-lock stall.
    let sv = server.clone();
    s.set_on_request(move |ch, _m, tok| {
        sv.thread().charge(Dur::millis(1)); // 1 ms stall per request
        ch.respond_size(tok, 16).ok();
    });
    for _ in 0..20 {
        c.send_request_size(64, |_, _| {}).unwrap();
    }
    net.world.run_for(Dur::millis(100));
    assert!(
        !tracer.slow_ops.borrow().is_empty(),
        "slow-op log caught the handler"
    );
    assert!(
        !tracer.poll_gaps.borrow().is_empty(),
        "poll gaps observed while the thread was stalled"
    );
    assert!(server.stats().poll_gap_warnings > 0);
}

#[test]
fn slow_op_watchdog_threshold_is_strictly_greater() {
    // Edge semantics of the §VI-A watchdog: a handler costing *exactly*
    // the threshold is fine; one nanosecond more is a slow op. Driven
    // through a live server (not just the predicate) so the measured
    // handler cost really is what the charge says.
    let run = |charge: Dur| -> usize {
        let mut cfg = XrdmaConfig::default();
        cfg.slow_threshold = Dur::micros(300);
        let net = net(FabricConfig::pair(), 12);
        let client = ctx(&net, 0, cfg.clone());
        let server = ctx(&net, 1, cfg);
        let (c, s) = connect(&net, &client, &server, 7);
        let tracer = Tracer::new(0);
        server.set_instrument(tracer.clone());
        let sv = server.clone();
        // Oneway: the handler's only cost is the explicit charge (a
        // respond would add its own send-path cycles on top).
        s.set_on_request(move |_ch, _m, _tok| sv.thread().charge(charge));
        for _ in 0..10 {
            c.send_oneway_size(64).unwrap();
        }
        net.world.run_for(Dur::millis(50));
        let n = tracer.slow_ops.borrow().len();
        n
    };
    assert_eq!(
        run(Dur::micros(300)),
        0,
        "cost exactly at the threshold is not slow"
    );
    assert_eq!(
        run(Dur::micros(300) + Dur::nanos(1)),
        10,
        "one nanosecond over the threshold is"
    );
}

#[test]
fn xrping_matrix_spots_the_dead_machine() {
    let net = net(FabricConfig::rack(4), 4);
    let ctxs: Vec<_> = (0..4)
        .map(|i| ctx(&net, i, XrdmaConfig::default()))
        .collect();
    // Machine 2 is dead.
    ctxs[2].rnic().crash();
    let ping = XrPing::new(net.world.clone(), ctxs.clone(), 99);
    ping.probe_all();
    net.world.run_for(Dur::secs(3));
    let m = ping.matrix();
    use xrdma_analysis::xrping::PingCell;
    // Live pairs respond with microsecond RTTs.
    assert!(matches!(m[0][1], PingCell::Ok(d) if d < Dur::millis(1)));
    assert!(matches!(m[1][3], PingCell::Ok(_)));
    // Everything touching machine 2 is unreachable.
    assert_eq!(m[0][2], PingCell::Unreachable);
    assert_eq!(m[1][2], PingCell::Unreachable);
    assert_eq!(m[3][2], PingCell::Unreachable);
    // A dead machine cannot probe at all.
    assert_eq!(m[2][0], PingCell::Unreachable);
    assert_eq!(ping.unreachable_pairs(), 6);
    let rendered = ping.render();
    assert!(rendered.contains("----"));
}

#[test]
fn xrperf_closed_loop_reports_throughput() {
    let net = net(FabricConfig::pair(), 5);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    let (c, s) = connect(&net, &client, &server, 7);
    s.set_on_request(|ch, _m, tok| {
        ch.respond_size(tok, 32).ok();
    });
    let perf = XrPerf::new(
        net.world.clone(),
        c,
        FlowModel::ClosedLoop {
            size: 4096,
            depth: 8,
        },
        net.rng.fork("perf"),
    );
    perf.run_for(Dur::millis(50));
    net.world.run_for(Dur::millis(60));
    let s = perf.summary();
    assert!(s.completed > 100, "completed {}", s.completed);
    assert!(s.mean_latency_us > 1.0 && s.mean_latency_us < 200.0);
    assert!(s.throughput_gbps > 0.1, "tput {}", s.throughput_gbps);
    assert!(s.p99_us >= s.p50_us);
}

#[test]
fn xrperf_elephant_mice_mix() {
    let net = net(FabricConfig::pair(), 6);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    let (c, s) = connect(&net, &client, &server, 7);
    s.set_on_request(|ch, _m, tok| {
        ch.respond_size(tok, 16).ok();
    });
    let perf = XrPerf::new(
        net.world.clone(),
        c.clone(),
        FlowModel::ElephantMice {
            mice_size: 256,
            elephant_size: 1024 * 1024,
            elephant_fraction: 0.05,
            interval: Dur::micros(50),
        },
        net.rng.fork("perf"),
    );
    perf.run_for(Dur::millis(100));
    net.world.run_for(Dur::millis(200));
    let sum = perf.summary();
    assert!(sum.completed > 500, "completed {}", sum.completed);
    // Elephants ran: at least one large transfer went through.
    assert!(c.stats().large_msgs > 0);
    assert!(c.stats().small_msgs > 0);
}

#[test]
fn filter_injected_drops_are_recovered_by_rc() {
    // Table II: "bugs hard to reproduce → filter". Drop 20% of inbound
    // packets at the server; go-back-N must still deliver everything.
    let net = net(FabricConfig::pair(), 7);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    let (c, s) = connect(&net, &client, &server, 7);
    let filter = Filter::install(server.rnic(), net.rng.fork("filter"));
    filter.drop_rate(Some(NodeId(0)), 0.2);
    let got = Rc::new(Cell::new(0u32));
    let g = got.clone();
    s.set_on_request(move |_, _, _| g.set(g.get() + 1));
    for _ in 0..200 {
        c.send_oneway_size(512).unwrap();
    }
    net.world.run_for(Dur::secs(5));
    assert_eq!(got.get(), 200, "reliability recovered every drop");
    assert!(filter.dropped.get() > 10, "filter actually dropped");
    assert!(
        client.rnic().stats().retransmissions > 0,
        "go-back-N did the work"
    );
    // Disable online: traffic flows cleanly again.
    filter.set_enabled(false);
    let before = filter.dropped.get();
    for _ in 0..50 {
        c.send_oneway_size(512).unwrap();
    }
    net.world.run_for(Dur::millis(100));
    assert_eq!(filter.dropped.get(), before);
    assert_eq!(got.get(), 250);
}

#[test]
fn filter_delay_slows_but_delivers() {
    let net = net(FabricConfig::pair(), 8);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    let (c, s) = connect(&net, &client, &server, 7);
    let filter = Filter::install(server.rnic(), net.rng.fork("filter"));
    filter.slow_rate(None, 1.0, Dur::millis(1));
    let done = Rc::new(Cell::new(0u64));
    let d = done.clone();
    s.set_on_request(move |ch, _m, tok| {
        ch.respond_size(tok, 8).ok();
    });
    let t0 = net.world.now();
    let w = net.world.clone();
    let d2 = d.clone();
    c.send_request_size(64, move |_, _| d2.set(w.now().since(t0).as_nanos()))
        .unwrap();
    net.world.run_for(Dur::millis(50));
    assert!(
        done.get() > 1_000_000,
        "rtt {}ns includes injected delay",
        done.get()
    );
    assert!(filter.delayed.get() >= 1);
}

#[test]
fn mock_switches_to_tcp_and_back() {
    let net = net(FabricConfig::pair(), 9);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    let (c, s) = connect(&net, &client, &server, 7);

    // TCP path between the same machines.
    let tcp_a = TcpStack::new(&net.fabric, client.rnic(), TcpConfig::default());
    let tcp_b = TcpStack::new(&net.fabric, server.rnic(), TcpConfig::default());
    let got: Rc<RefCell<Vec<(u64, &'static str)>>> = Rc::new(RefCell::new(Vec::new()));

    // Server-side unified sink across both transports.
    let server_mock = MockTransport::new();
    server_mock.attach_rdma(s.clone());
    let g = got.clone();
    let sm2 = server_mock.clone();
    tcp_b.listen(40, move |conn| {
        sm2.attach_tcp(conn);
    });
    let g2 = g.clone();
    server_mock.set_on_msg(move |len, _| g2.borrow_mut().push((len, "any")));

    let client_mock = MockTransport::new();
    client_mock.attach_rdma(c.clone());
    let cm2 = client_mock.clone();
    tcp_a.connect(NodeId(1), 40, move |conn| {
        cm2.attach_tcp(conn);
    });
    net.world.run_for(Dur::millis(5));

    // Phase 1: RDMA.
    assert!(client_mock.send(Bytes::from_static(b"via-rdma")));
    net.world.run_for(Dur::millis(5));
    assert_eq!(got.borrow().len(), 1);
    assert_eq!(client_mock.sent_rdma.get(), 1);

    // Anomaly: switch to TCP.
    client_mock.switch_to_tcp();
    assert!(client_mock.send(Bytes::from_static(b"via-tcp!")));
    net.world.run_for(Dur::millis(5));
    assert_eq!(got.borrow().len(), 2);
    assert_eq!(client_mock.sent_tcp.get(), 1);

    // Recovered: back to RDMA.
    client_mock.switch_to_rdma();
    assert!(client_mock.send_size(128));
    net.world.run_for(Dur::millis(5));
    assert_eq!(got.borrow().len(), 3);
    assert_eq!(client_mock.sent_rdma.get(), 2);
}

#[test]
fn monitor_collects_series_and_xrstat_renders() {
    let net = net(FabricConfig::pair(), 10);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server = ctx(&net, 1, XrdmaConfig::default());
    let (c, s) = connect(&net, &client, &server, 7);
    s.set_on_request(|ch, _m, tok| {
        ch.respond_size(tok, 1024).ok();
    });
    let monitor = Monitor::new(net.world.clone(), Dur::millis(10));
    monitor.track(&client);
    monitor.track(&server);
    for _ in 0..200 {
        c.send_request_size(2048, |_, _| {}).unwrap();
    }
    net.world.run_for(Dur::millis(100));
    let samples = monitor.samples_for(0);
    assert!(samples.len() >= 8, "~10 samples over 100ms");
    assert!(samples.last().unwrap().bytes_tx > 200 * 2048 / 2);
    let tx = monitor.tx_rows(0);
    assert!(tx.iter().map(|&(_, v)| v).sum::<f64>() > 0.0);
    let json = monitor.to_json();
    assert!(json.contains("\"bytes_tx\""));

    // XR-Stat table.
    let rows = xrstat::connection_table(&client);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].peer_node, 1);
    assert_eq!(rows[0].msgs_sent, 200);
    let rendered = xrstat::render_table(&rows);
    assert!(rendered.contains("n1"));
    let health = xrstat::health(&client);
    assert_eq!(health.node, 0);
    assert!(health.registered_mb > 0.0);
    let fh = xrstat::fabric_health(&net.fabric);
    assert!(fh.contains("delivered="));
}

#[test]
fn xradm_distributes_online_flags() {
    let net = net(FabricConfig::rack(3), 11);
    let fleet: Vec<_> = (0..3)
        .map(|i| ctx(&net, i, XrdmaConfig::default()))
        .collect();
    let adm = XrAdm::new(fleet.clone());
    assert_eq!(adm.fleet_size(), 3);
    assert!(adm.set_flag_all_ok("keepalive_intv_ms", "77"));
    for ctxi in &fleet {
        assert_eq!(ctxi.config().keepalive_intv, Dur::millis(77));
    }
    // Offline keys fail everywhere, consistently.
    let results = adm.set_flag("use_srq", "true");
    assert!(results.iter().all(|r| r.result.is_err()));
}

#[test]
fn xrserver_answers_echo_sink_generate() {
    use xrdma_analysis::XrServer;
    let net = net(FabricConfig::pair(), 20);
    let client = ctx(&net, 0, XrdmaConfig::default());
    let server_ctx = ctx(&net, 1, XrdmaConfig::default());
    let server = XrServer::start(&server_ctx, 50);
    let cch: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
    let c2 = cch.clone();
    client.connect(NodeId(1), 50, move |r| *c2.borrow_mut() = Some(r.unwrap()));
    net.world.run_for(Dur::millis(20));
    let ch = cch.borrow().clone().unwrap();

    let sizes: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    for body in [
        &b"Echo-payload"[..],
        &b"S-upload"[..],
        &b"G\x04download"[..],
    ] {
        let s2 = sizes.clone();
        ch.send_request(Bytes::copy_from_slice(body), move |_, resp| {
            s2.borrow_mut().push(resp.len);
        })
        .unwrap();
    }
    net.world.run_for(Dur::millis(10));
    assert_eq!(
        *sizes.borrow(),
        vec![12, 16, 4096],
        "echo / sink / generate"
    );
    assert_eq!(server.stats.requests.get(), 3);
    assert!(server.report().contains("3 requests"));
}

#[test]
fn mock_auto_switch_on_dead_rdma_path() {
    use xrdma_analysis::mock::Transport;
    let mut cfg = XrdmaConfig::default();
    cfg.keepalive_intv = Dur::millis(10);
    cfg.timer_period = Dur::millis(2);
    let world = World::new();
    let rng = SimRng::new(21);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    let mut rnic_cfg = RnicConfig::default();
    rnic_cfg.retx_timeout = Dur::millis(2);
    rnic_cfg.retry_count = 2;
    let a = XrdmaContext::on_new_node(&fabric, &cm, NodeId(0), rnic_cfg.clone(), cfg.clone(), &rng);
    let b = XrdmaContext::on_new_node(&fabric, &cm, NodeId(1), rnic_cfg, cfg, &rng);
    let netr = Net {
        world: world.clone(),
        fabric: fabric.clone(),
        cm,
        rng: rng.fork("n"),
    };
    let (c, s) = connect(&netr, &a, &b, 7);
    let _ = s;

    let got = Rc::new(Cell::new(0u64));
    let mock = xrdma_analysis::MockTransport::new();
    mock.attach_rdma(c.clone());
    // TCP fallback path.
    let ta =
        xrdma_rnic::tcp::TcpStack::new(&fabric, a.rnic(), xrdma_rnic::tcp::TcpConfig::default());
    let tb =
        xrdma_rnic::tcp::TcpStack::new(&fabric, b.rnic(), xrdma_rnic::tcp::TcpConfig::default());
    let g = got.clone();
    let mock_b = xrdma_analysis::MockTransport::new();
    let mb = mock_b.clone();
    tb.listen(40, move |conn| mb.attach_tcp(conn));
    mock_b.set_on_msg(move |len, _| g.set(g.get() + len));
    let m2 = mock.clone();
    ta.connect(NodeId(1), 40, move |conn| m2.attach_tcp(conn));
    world.run_for(Dur::millis(5));

    mock.auto_switch(&world, Dur::millis(5), 1_000_000);
    assert_eq!(mock.mode(), Transport::Rdma);
    // Kill the RDMA path's peer NIC... but keep TCP alive: crash would
    // kill both (same NIC). Instead, close the RDMA channel — "protocol
    // stack collapse" from the transport's perspective.
    c.close();
    world.run_for(Dur::millis(30));
    assert_eq!(mock.mode(), Transport::Tcp, "watchdog fell back to TCP");
    assert!(mock.send(Bytes::from_static(b"still-flowing")));
    world.run_for(Dur::millis(10));
    assert_eq!(got.get(), 13, "traffic continued over TCP");
}
