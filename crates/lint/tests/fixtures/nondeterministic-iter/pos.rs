use std::collections::HashMap;

struct Qps {
    map: HashMap<u32, u64>,
}

fn reset_all(q: &mut Qps) {
    for (_, v) in q.map.iter_mut() {
        *v = 0;
    }
}
