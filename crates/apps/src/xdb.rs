//! X-DB front-end model: the MySQL-in-Docker tier of §II-C. Compared to
//! ESSD it is small-write-heavy and latency-sensitive — transaction log
//! appends (a few KiB) dominate, with periodic larger page flushes. Drives
//! Figure 12b.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use xrdma_sim::stats::{Histogram, SeriesKind, TimeSeries};
use xrdma_sim::{Dur, SimRng, Time, World};

use crate::pangu::BlockServer;
use crate::workload::LoadSchedule;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct XdbConfig {
    /// Transaction-log append size.
    pub log_size: u64,
    /// Page-flush size.
    pub flush_size: u64,
    /// Fraction of operations that are flushes.
    pub flush_fraction: f64,
    /// Base mean inter-arrival of transactions.
    pub base_interval: Dur,
    pub queue_depth: u32,
    pub bucket: Dur,
}

impl Default for XdbConfig {
    fn default() -> Self {
        XdbConfig {
            log_size: 8 * 1024,
            flush_size: 256 * 1024,
            flush_fraction: 0.04,
            base_interval: Dur::micros(120),
            queue_depth: 64,
            bucket: Dur::millis(100),
        }
    }
}

/// The X-DB front-end generator for one block server.
pub struct XdbFrontend {
    world: Rc<World>,
    block: Rc<BlockServer>,
    cfg: XdbConfig,
    schedule: LoadSchedule,
    rng: RefCell<SimRng>,
    pub outstanding: Cell<u32>,
    pub completed: Cell<u64>,
    pub dropped: Cell<u64>,
    pub latency: RefCell<Histogram>,
    pub tps: RefCell<TimeSeries>,
    pub lat_series: RefCell<TimeSeries>,
    stop_at: Cell<Time>,
}

impl XdbFrontend {
    pub fn new(
        block: &Rc<BlockServer>,
        cfg: XdbConfig,
        schedule: LoadSchedule,
        rng: SimRng,
    ) -> Rc<XdbFrontend> {
        let world = block.ctx.world().clone();
        Rc::new(XdbFrontend {
            world,
            block: block.clone(),
            tps: RefCell::new(TimeSeries::new(cfg.bucket.as_nanos(), SeriesKind::Sum)),
            lat_series: RefCell::new(TimeSeries::new(cfg.bucket.as_nanos(), SeriesKind::Mean)),
            cfg,
            schedule,
            rng: RefCell::new(rng),
            outstanding: Cell::new(0),
            completed: Cell::new(0),
            dropped: Cell::new(0),
            latency: RefCell::new(Histogram::new()),
            stop_at: Cell::new(Time::MAX),
        })
    }

    pub fn run_for(self: &Rc<Self>, duration: Dur) {
        self.stop_at.set(self.world.now() + duration);
        self.tick();
    }

    fn tick(self: &Rc<Self>) {
        let now = self.world.now();
        if now >= self.stop_at.get() {
            return;
        }
        self.fire();
        let next = {
            let mean = self
                .schedule
                .interval_at(now, self.cfg.base_interval)
                .as_nanos() as f64;
            Dur::nanos(self.rng.borrow_mut().exp(mean))
        };
        let me = self.clone();
        self.world.schedule_in(next, move || me.tick());
    }

    fn fire(self: &Rc<Self>) {
        if self.outstanding.get() >= self.cfg.queue_depth {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        let size = if self.rng.borrow_mut().chance(self.cfg.flush_fraction) {
            self.cfg.flush_size
        } else {
            self.cfg.log_size
        };
        self.outstanding.set(self.outstanding.get() + 1);
        let me = self.clone();
        let t0 = self.world.now();
        self.block.submit_write(size, move |ok| {
            me.outstanding.set(me.outstanding.get() - 1);
            if ok {
                me.completed.set(me.completed.get() + 1);
                let now = me.world.now();
                let lat = now.since(t0);
                me.latency.borrow_mut().record(lat.as_nanos());
                me.tps.borrow_mut().record(now.nanos(), 1.0);
                me.lat_series
                    .borrow_mut()
                    .record(now.nanos(), lat.as_micros_f64());
            }
        });
    }

    pub fn p99_us(&self) -> f64 {
        self.latency.borrow().percentile(99.0) as f64 / 1e3
    }

    pub fn mean_tps(&self, from_bucket: usize, to_bucket: usize) -> f64 {
        let per_bucket = self.tps.borrow().mean_over(from_bucket, to_bucket);
        per_bucket * 1e9 / self.cfg.bucket.as_nanos() as f64
    }
}
