//! Shared experiment scaffolding: world/fabric/context builders and the
//! incast driver reused across the figure harnesses.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use xrdma_core::{XrdmaChannel, XrdmaConfig, XrdmaContext};
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
use xrdma_sim::{Dur, Kernel, SimRng, World};

/// A constructed simulation network.
pub struct Net {
    pub world: Rc<World>,
    pub fabric: Rc<Fabric>,
    pub cm: Rc<ConnManager>,
    pub rng: SimRng,
}

pub fn net(fcfg: FabricConfig, seed: u64) -> Net {
    net_on(Kernel::default(), fcfg, seed)
}

/// Like [`net`] but on an explicit calendar kernel — `simperf` uses this to
/// race the timer wheel against the legacy heap on identical workloads.
pub fn net_on(kernel: Kernel, fcfg: FabricConfig, seed: u64) -> Net {
    let world = World::with_kernel(kernel);
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), fcfg, &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    Net {
        world,
        fabric,
        cm,
        rng,
    }
}

pub fn ctx(net: &Net, node: u32, cfg: XrdmaConfig) -> Rc<XrdmaContext> {
    ctx_with(net, node, RnicConfig::default(), cfg)
}

pub fn ctx_with(net: &Net, node: u32, rnic: RnicConfig, cfg: XrdmaConfig) -> Rc<XrdmaContext> {
    XrdmaContext::on_new_node(&net.fabric, &net.cm, NodeId(node), rnic, cfg, &net.rng)
}

/// Connect and return both channel ends (runs the world up to 20 ms).
pub fn connect_pair(
    net: &Net,
    client: &Rc<XrdmaContext>,
    server: &Rc<XrdmaContext>,
    svc: u16,
) -> (Rc<XrdmaChannel>, Rc<XrdmaChannel>) {
    let sch: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
    let s2 = sch.clone();
    server.listen(svc, move |ch| *s2.borrow_mut() = Some(ch));
    let cch: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
    let c2 = cch.clone();
    client.connect(NodeId(server.node().0), svc, move |r| {
        *c2.borrow_mut() = Some(r.expect("connect"));
    });
    net.world.run_for(Dur::millis(20));
    let c = cch.borrow().clone().expect("client side");
    let s = sch.borrow().clone().expect("server side");
    (c, s)
}

/// Result of one incast run.
pub struct IncastOutcome {
    pub delivered_bytes: u64,
    pub elapsed: Dur,
    pub cnps: u64,
    pub pause_frames: u64,
    pub host_tx_pause: u64,
    pub ecn_marks: u64,
    /// Per-100ms delivered-bytes series for the bandwidth plot.
    pub bw_series: Vec<(f64, f64)>,
    /// Telemetry run log, when the harness was built with the `telemetry`
    /// feature (`None` otherwise): every protocol-level event the stack
    /// emitted, ready for the exporters in `xrdma_telemetry::export`.
    pub events: Option<Vec<xrdma_telemetry::Event>>,
    /// Total simulator events executed over the whole run (setup included)
    /// — the numerator of `simperf`'s events-per-second metric.
    pub events_executed: u64,
}

impl IncastOutcome {
    pub fn goodput_gbps(&self) -> f64 {
        self.delivered_bytes as f64 * 8.0 / self.elapsed.as_secs_f64().max(1e-9) / 1e9
    }
}

/// Drive `senders` hosts pipelining `msg_bytes` requests into host 0 for
/// `span`, with per-sender pipeline depth `depth`.
pub fn run_incast(
    cfg: XrdmaConfig,
    senders: u32,
    msg_bytes: u64,
    depth: u32,
    span: Dur,
    seed: u64,
) -> IncastOutcome {
    run_incast_on(
        Kernel::default(),
        cfg,
        senders,
        msg_bytes,
        depth,
        span,
        seed,
    )
}

/// [`run_incast`] on an explicit calendar kernel.
pub fn run_incast_on(
    kernel: Kernel,
    cfg: XrdmaConfig,
    senders: u32,
    msg_bytes: u64,
    depth: u32,
    span: Dur,
    seed: u64,
) -> IncastOutcome {
    let net = net_on(kernel, FabricConfig::rack(senders + 1), seed);
    run_incast_in(&net, cfg, senders, msg_bytes, depth, span)
}

/// Drive the incast on an already-built network, so callers can install
/// extra machinery (e.g. a fault injector) on the world first.
pub fn run_incast_in(
    net: &Net,
    cfg: XrdmaConfig,
    senders: u32,
    msg_bytes: u64,
    depth: u32,
    span: Dur,
) -> IncastOutcome {
    #[cfg(feature = "telemetry")]
    let hub =
        xrdma_telemetry::TelemetryHub::install(&net.world, xrdma_telemetry::HubConfig::default());
    let sink = ctx(net, 0, cfg.clone());
    let received = Rc::new(Cell::new(0u64));
    let series = Rc::new(RefCell::new(xrdma_sim::stats::TimeSeries::new(
        Dur::millis(100).as_nanos(),
        xrdma_sim::stats::SeriesKind::Sum,
    )));
    let r = received.clone();
    let ser = series.clone();
    let w = net.world.clone();
    sink.listen(9, move |ch| {
        let r2 = r.clone();
        let ser2 = ser.clone();
        let w2 = w.clone();
        ch.set_on_request(move |ch2, msg, tok| {
            r2.set(r2.get() + msg.len);
            ser2.borrow_mut().record(w2.now().nanos(), msg.len as f64);
            ch2.respond_size(tok, 32).ok();
        });
    });
    let mut all = Vec::new();
    for i in 1..=senders {
        let c = ctx(net, i, cfg.clone());
        let slot: Rc<RefCell<Option<Rc<XrdmaChannel>>>> = Rc::new(RefCell::new(None));
        let s2 = slot.clone();
        c.connect(NodeId(0), 9, move |r| {
            *s2.borrow_mut() = Some(r.expect("connect"))
        });
        all.push((c, slot));
    }
    net.world.run_for(Dur::millis(100));

    fn pump(ch: &Rc<XrdmaChannel>, size: u64) {
        let c2 = ch.clone();
        ch.send_request_size(size, move |_, _| pump(&c2, size)).ok();
    }
    for (_, slot) in &all {
        let ch = slot.borrow().clone().expect("connected");
        for _ in 0..depth {
            pump(&ch, msg_bytes);
        }
    }
    let start = net.world.now();
    net.world.run_for(span);
    let elapsed = net.world.now().since(start);
    let c = net.fabric.stats().snapshot();
    let cnps: u64 = all
        .iter()
        .map(|(c, _)| c.rnic().stats().cnps_received)
        .sum();
    let bw_series = series.borrow().rows();
    #[cfg(feature = "telemetry")]
    let events = Some(hub.events());
    #[cfg(not(feature = "telemetry"))]
    let events = None;
    IncastOutcome {
        delivered_bytes: received.get(),
        elapsed,
        cnps,
        pause_frames: c.pause_frames,
        host_tx_pause: c.host_tx_pause,
        ecn_marks: c.ecn_marked,
        bw_series,
        events,
        events_executed: net.world.events_executed(),
    }
}
