//! The application-layer seq-ack window — Algorithm 1 of the paper (§V-B),
//! as pure state machines (no I/O) so the invariants are unit- and
//! property-testable in isolation.
//!
//! Why it exists: the RNIC's hardware ACK only proves a packet reached the
//! peer NIC, not that the peer *application* consumed it and freed the
//! buffer. X-RDMA therefore runs a message-granular window above verbs:
//!
//! * the **sender** may have at most `depth` unacknowledged messages; the
//!   window is a ring buffer with one slot reserved for NOP, so a
//!   deadlock-breaking message can always be sent;
//! * the **receiver** tracks WTA ("wait to ack": received messages) and
//!   RTA ("ready to ack": messages the application has consumed, advanced
//!   in order), and piggybacks `ACKED = RTA` on every outgoing message;
//! * because the sender never exceeds the window and the receiver pre-posts
//!   `depth` receive buffers, the receive queue can never underflow —
//!   **RNR-free by construction** (Fig 9).
//!
//! Naming follows the paper: `seq`/`acked` on the TX side; `wta`/`rta`/
//! `acked` on the RX side.

use xrdma_sim::invariant;
use xrdma_telemetry::tele;

/// Sender-side window over one channel.
#[derive(Clone, Debug)]
pub struct TxWindow {
    depth: u32,
    /// Next sequence number to assign (paper: `QP.tx.seq`).
    seq: u32,
    /// Cumulative peer acknowledgment (paper: `QP.tx.acked`): all
    /// sequences `< acked` are acknowledged.
    acked: u32,
}

impl TxWindow {
    /// `depth` is the in-flight message limit; the paper keeps it below
    /// the CQ depth and reserves one slot for NOP.
    pub fn new(depth: u32) -> TxWindow {
        assert!(depth >= 2, "window needs a data slot and the NOP slot");
        TxWindow {
            depth,
            seq: 0,
            acked: 0,
        }
    }

    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Sequences in flight right now.
    pub fn in_flight(&self) -> u32 {
        self.seq.wrapping_sub(self.acked)
    }

    /// Can another *data* message be sent? One slot stays reserved for
    /// NOP so the deadlock breaker can always go out.
    pub fn can_send(&self) -> bool {
        self.in_flight() < self.depth - 1
    }

    /// Window completely stalled (not even one data slot)?
    pub fn stalled(&self) -> bool {
        !self.can_send()
    }

    /// Assign the next sequence number (paper: `SEND_MESSAGE: tx.seq++`).
    /// Caller must have checked `can_send`.
    pub fn next_seq(&mut self) -> u32 {
        // No sequence reuse: a slot is only re-assigned after the previous
        // occupant was cumulatively acked, which `can_send` guarantees.
        invariant!(self.can_send(), "window overrun: seq reuse at {}", self.seq);
        debug_assert!(self.can_send(), "window overrun");
        let s = self.seq;
        self.seq = self.seq.wrapping_add(1);
        s
    }

    /// Process a cumulative ACK from the peer (paper: `RECV_MESSAGE`).
    /// Returns the sequences newly acknowledged, in order — the caller
    /// runs `on_acked` for each (release buffers, complete sends).
    ///
    /// Wrapping-safe: `ack` may lag `acked` (duplicate) but never lead
    /// `seq`.
    pub fn on_ack(&mut self, ack: u32) -> impl Iterator<Item = u32> + use<> {
        // Bound the advance by what is actually in flight, so a corrupt or
        // reordered ack can never over-advance the window; a lag in the
        // upper half of the u32 circle is a stale (pre-wrap) duplicate.
        let lag = ack.wrapping_sub(self.acked);
        let newly = if lag > u32::MAX / 2 {
            0
        } else {
            lag.min(self.in_flight())
        };
        let start = self.acked;
        self.acked = self.acked.wrapping_add(newly);
        // Monotonicity: the cumulative-ack edge never regresses past `seq`
        // and the window never holds more than `depth` messages.
        invariant!(
            self.in_flight() <= self.depth,
            "ack regression: acked {} seq {} depth {}",
            self.acked,
            self.seq,
            self.depth
        );
        (0..newly).map(move |i| start.wrapping_add(i))
    }

    /// Lowest unacknowledged sequence, if any.
    pub fn oldest_unacked(&self) -> Option<u32> {
        if self.in_flight() > 0 {
            Some(self.acked)
        } else {
            None
        }
    }
}

/// What the receiver should do with an accepted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxAccept {
    /// In-order fresh message: process it.
    Fresh,
    /// Already seen (peer retransmitted after our ack was lost): re-ack,
    /// do not re-deliver.
    Duplicate,
}

/// Receiver-side window over one channel.
#[derive(Clone, Debug)]
pub struct RxWindow {
    depth: u32,
    /// Highest received + 1 (paper: `QP.rx.wta` — wait-to-ack edge).
    wta: u32,
    /// Consumed-in-order edge (paper: `QP.rx.rta` — ready-to-ack).
    rta: u32,
    /// Last ACK value actually transmitted to the peer.
    acked_sent: u32,
    /// Completion flags for the out-of-order-completion range
    /// [rta, wta): ring-indexed by seq % depth (paper: `msgs[i].recved`).
    recved: Vec<bool>,
}

impl RxWindow {
    pub fn new(depth: u32) -> RxWindow {
        assert!(depth >= 2);
        RxWindow {
            depth,
            wta: 0,
            rta: 0,
            acked_sent: 0,
            recved: vec![false; depth as usize],
        }
    }

    pub fn wta(&self) -> u32 {
        self.wta
    }

    pub fn rta(&self) -> u32 {
        self.rta
    }

    /// A sequenced message arrived (paper: receiver `SEND_MESSAGE`
    /// prologue — `rx.wta++`). Returns whether it is fresh or a duplicate.
    pub fn on_arrival(&mut self, seq: u32) -> RxAccept {
        if seq.wrapping_sub(self.rta) >= self.depth {
            // Behind the window (or absurdly ahead, impossible on RC):
            // a retransmission of something we consumed.
            tele!(SeqDuplicate { seq });
            return RxAccept::Duplicate;
        }
        let next = self.wta;
        let verdict = if seq == next {
            self.wta = self.wta.wrapping_add(1);
            self.recved[(seq % self.depth) as usize] = false;
            RxAccept::Fresh
        } else if seq.wrapping_sub(self.rta) < next.wrapping_sub(self.rta) {
            tele!(SeqDuplicate { seq });
            RxAccept::Duplicate
        } else {
            // Ahead of wta: RC in-order delivery makes this unreachable,
            // but accept conservatively by advancing (fills gaps as
            // un-recved, which stalls rta — visible in tests).
            self.wta = seq.wrapping_add(1);
            RxAccept::Fresh
        };
        self.check_edges();
        verdict
    }

    /// Window-edge invariants (checked under `debug_invariants`):
    /// `rta ≤ wta ≤ rta + depth` and the last transmitted ack never leads
    /// `rta` — an ack for an unconsumed message would break the RNR-free
    /// construction.
    fn check_edges(&self) {
        invariant!(
            self.wta.wrapping_sub(self.rta) <= self.depth,
            "rx window wider than depth: rta {} wta {} depth {}",
            self.rta,
            self.wta,
            self.depth
        );
        invariant!(
            self.rta.wrapping_sub(self.acked_sent) <= self.depth,
            "transmitted ack {} leads rta {}",
            self.acked_sent,
            self.rta
        );
    }

    /// Mark a message completed (small message processed, or
    /// `rdma_read_done` for a large one) and advance RTA over every
    /// contiguous completed message (paper: `RDMA_READ_DONE`). Returns the
    /// sequences that became deliverable *in order*.
    pub fn on_complete(&mut self, seq: u32) -> Vec<u32> {
        let off = seq.wrapping_sub(self.rta);
        if off >= self.depth {
            return Vec::new(); // stale completion
        }
        self.recved[(seq % self.depth) as usize] = true;
        let mut out = Vec::new();
        while self.rta != self.wta && self.recved[(self.rta % self.depth) as usize] {
            self.recved[(self.rta % self.depth) as usize] = false;
            out.push(self.rta);
            self.rta = self.rta.wrapping_add(1);
        }
        self.check_edges();
        out
    }

    /// The ACK number to piggyback on the next outgoing message (paper:
    /// `msg.acked = QP.rx.acked = QP.rx.rta`). Records it as sent.
    pub fn take_ack(&mut self) -> u32 {
        self.acked_sent = self.rta;
        self.rta
    }

    /// How many completions the peer has not been told about.
    pub fn unsent_acks(&self) -> u32 {
        self.rta.wrapping_sub(self.acked_sent)
    }

    /// Should a standalone ACK be generated (after N receptions with no
    /// reverse traffic, §V-B)?
    pub fn needs_standalone_ack(&self, after: u32) -> bool {
        self.unsent_acks() >= after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_window_opens_and_closes() {
        let mut tx = TxWindow::new(4); // 3 data slots + NOP
        assert!(tx.can_send());
        let s0 = tx.next_seq();
        let s1 = tx.next_seq();
        let s2 = tx.next_seq();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        assert!(!tx.can_send(), "3 in flight = data slots exhausted");
        assert!(tx.stalled());
        let acked: Vec<u32> = tx.on_ack(2).collect();
        assert_eq!(acked, vec![0, 1]);
        assert!(tx.can_send());
        assert_eq!(tx.in_flight(), 1);
        assert_eq!(tx.oldest_unacked(), Some(2));
    }

    #[test]
    fn tx_duplicate_ack_is_noop() {
        let mut tx = TxWindow::new(8);
        tx.next_seq();
        tx.next_seq();
        assert_eq!(tx.on_ack(1).count(), 1);
        assert_eq!(tx.on_ack(1).count(), 0, "duplicate");
        assert_eq!(tx.on_ack(0).count(), 0, "stale");
        assert_eq!(tx.in_flight(), 1);
    }

    #[test]
    fn tx_overdriven_ack_is_clamped() {
        let mut tx = TxWindow::new(8);
        tx.next_seq();
        // Ack claims 100 messages; only 1 is in flight.
        assert_eq!(tx.on_ack(100).count(), 1);
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.oldest_unacked(), None);
    }

    #[test]
    fn tx_wraps_around_u32() {
        let mut tx = TxWindow::new(4);
        tx.seq = u32::MAX - 1;
        tx.acked = u32::MAX - 1;
        let a = tx.next_seq();
        let b = tx.next_seq();
        assert_eq!(a, u32::MAX - 1);
        assert_eq!(b, u32::MAX);
        let acked: Vec<u32> = tx.on_ack(1).collect(); // wrapped ack value
        assert_eq!(acked, vec![u32::MAX - 1, u32::MAX]);
        assert_eq!(tx.next_seq(), 0, "wrapped");
    }

    #[test]
    fn rx_in_order_flow() {
        let mut rx = RxWindow::new(4);
        assert_eq!(rx.on_arrival(0), RxAccept::Fresh);
        assert_eq!(rx.on_arrival(1), RxAccept::Fresh);
        assert_eq!(rx.wta(), 2);
        assert_eq!(rx.rta(), 0, "nothing consumed yet");
        assert_eq!(rx.on_complete(0), vec![0]);
        assert_eq!(rx.on_complete(1), vec![1]);
        assert_eq!(rx.rta(), 2);
    }

    #[test]
    fn rx_out_of_order_completion_stalls_rta() {
        // Large message 0 still being read while small 1 and 2 complete:
        // rta must wait for 0 (in-order delivery guarantee).
        let mut rx = RxWindow::new(8);
        for s in 0..3 {
            rx.on_arrival(s);
        }
        assert_eq!(rx.on_complete(1), vec![]);
        assert_eq!(rx.on_complete(2), vec![]);
        assert_eq!(rx.rta(), 0);
        assert_eq!(rx.on_complete(0), vec![0, 1, 2], "releases the batch");
        assert_eq!(rx.rta(), 3);
    }

    #[test]
    fn rx_duplicate_detection() {
        let mut rx = RxWindow::new(4);
        rx.on_arrival(0);
        rx.on_complete(0);
        assert_eq!(rx.on_arrival(0), RxAccept::Duplicate);
        rx.on_arrival(1);
        assert_eq!(
            rx.on_arrival(1),
            RxAccept::Duplicate,
            "received, unconsumed"
        );
    }

    #[test]
    fn rx_ack_bookkeeping() {
        let mut rx = RxWindow::new(8);
        for s in 0..5 {
            rx.on_arrival(s);
            rx.on_complete(s);
        }
        assert_eq!(rx.unsent_acks(), 5);
        assert!(rx.needs_standalone_ack(4));
        assert!(!rx.needs_standalone_ack(6));
        assert_eq!(rx.take_ack(), 5);
        assert_eq!(rx.unsent_acks(), 0);
        assert!(!rx.needs_standalone_ack(4));
    }

    #[test]
    fn end_to_end_window_conversation() {
        // Symmetric sender/receiver pair exchanging a full window.
        let depth = 8;
        let mut tx = TxWindow::new(depth);
        let mut rx = RxWindow::new(depth);
        let mut delivered = Vec::new();
        // Fill the data slots.
        let mut sent = Vec::new();
        while tx.can_send() {
            sent.push(tx.next_seq());
        }
        assert_eq!(sent.len() as u32, depth - 1);
        for &s in &sent {
            assert_eq!(rx.on_arrival(s), RxAccept::Fresh);
            delivered.extend(rx.on_complete(s));
        }
        assert_eq!(delivered, sent);
        // Receiver piggybacks its ack; sender fully drains.
        let ack = rx.take_ack();
        assert_eq!(tx.on_ack(ack).count() as u32, depth - 1);
        assert_eq!(tx.in_flight(), 0);
        assert!(tx.can_send());
    }

    #[test]
    #[should_panic(expected = "window needs")]
    fn tiny_window_rejected() {
        TxWindow::new(1);
    }

    #[test]
    #[should_panic(expected = "window overrun")]
    fn invariant_rejects_seq_reuse() {
        let mut tx = TxWindow::new(2);
        tx.next_seq(); // the single data slot
        tx.next_seq(); // overrun: would reuse a live slot
    }

    #[test]
    fn rx_edges_hold_under_sustained_traffic() {
        // Many full window cycles of in-order traffic: `check_edges` runs
        // on every arrival/completion and must never trip.
        let depth = 4u32;
        let mut rx = RxWindow::new(depth);
        let mut tx = TxWindow::new(depth);
        for _ in 0..20 {
            while tx.can_send() {
                let s = tx.next_seq();
                assert_eq!(rx.on_arrival(s), RxAccept::Fresh);
                rx.on_complete(s);
            }
            tx.on_ack(rx.take_ack()).count();
        }
        assert_eq!(tx.in_flight(), 0);
    }
}
