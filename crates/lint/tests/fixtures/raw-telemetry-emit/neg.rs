fn emit(seq: u64) {
    tele!(SeqDuplicate { seq });
}
