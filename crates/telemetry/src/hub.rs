//! The cross-layer event bus.
//!
//! A [`TelemetryHub`] is installed per thread (one world per thread is the
//! workspace invariant, so per-thread means per-world) and collects every
//! event the stack emits through the [`tele!`](crate::tele) macro. The hub
//! owns three sinks:
//!
//! * the **run log** — an append-only `Vec<Event>` for exporters;
//! * the **flight recorder** — a bounded ring that also sees packet-level
//!   events, dumped when an `invariant!` fires or a channel dies abnormally;
//! * the **metrics registry** — counters/gauges/histograms/series sampled
//!   on a periodic virtual-time tick.
//!
//! Emission goes through two free functions, [`active`] and [`emit_raw`],
//! which `tele!` pairs so the payload is never even constructed when no hub
//! is installed. Calling `emit_raw` directly from stack code is flagged by
//! the `raw-telemetry-emit` lint rule: the macro is the only sanctioned
//! entry point, because it is what makes the telemetry-off build free.

use std::cell::RefCell;
use std::rc::{Rc, Weak};

use serde::Serialize;
use xrdma_sim::{Dur, Time, World};

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::recorder::FlightRecorder;

/// Capture policy for an installed hub.
#[derive(Clone, Copy, Debug)]
pub struct HubConfig {
    /// Append protocol-level events to the run log (needed by exporters).
    pub capture_log: bool,
    /// Also log packet-level events (`pkt-enqueue`) — high volume; the
    /// flight recorder sees them regardless.
    pub packet_level: bool,
    /// Flight-recorder ring capacity.
    pub ring_capacity: usize,
}

impl Default for HubConfig {
    fn default() -> HubConfig {
        HubConfig {
            capture_log: true,
            packet_level: false,
            ring_capacity: 256,
        }
    }
}

pub struct TelemetryHub {
    world: Rc<World>,
    cfg: HubConfig,
    events: RefCell<Vec<Event>>,
    recorder: RefCell<FlightRecorder>,
    metrics: MetricsRegistry,
    /// The most recent flight-recorder dump, kept for tests and reports.
    last_dump: RefCell<Option<Vec<Event>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<TelemetryHub>>> = const { RefCell::new(None) };
}

impl TelemetryHub {
    /// Install a fresh hub for this thread's world and wire the sim-layer
    /// invariant observer to the flight recorder. The returned guard
    /// uninstalls both on drop; installing over an existing hub replaces
    /// it.
    pub fn install(world: &Rc<World>, cfg: HubConfig) -> HubGuard {
        let hub = Rc::new(TelemetryHub {
            world: world.clone(),
            cfg,
            events: RefCell::new(Vec::new()),
            recorder: RefCell::new(FlightRecorder::new(cfg.ring_capacity)),
            metrics: MetricsRegistry::new(),
            last_dump: RefCell::new(None),
        });
        CURRENT.with(|c| *c.borrow_mut() = Some(hub.clone()));
        let weak = Rc::downgrade(&hub);
        xrdma_sim::set_invariant_observer(move |msg| {
            if let Some(hub) = weak.upgrade() {
                hub.record(EventKind::InvariantFired {
                    msg: msg.to_string(),
                });
                hub.dump_flight_recorder(msg);
            }
        });
        HubGuard { hub }
    }

    pub fn now(&self) -> Time {
        self.world.now()
    }

    /// Stamp and route one event. The flight recorder sees everything; the
    /// run log is filtered per [`HubConfig`]. An abnormal channel close
    /// (`peer-dead`) dumps the recorder, the §VI "black box on a crash"
    /// behaviour.
    pub fn record(&self, kind: EventKind) {
        let ev = Event {
            t: self.world.now(),
            kind,
        };
        self.recorder.borrow_mut().push(ev.clone());
        let abnormal_close = matches!(
            &ev.kind,
            EventKind::ChannelClose {
                reason: "peer-dead",
                ..
            }
        );
        if self.cfg.capture_log && (self.cfg.packet_level || !ev.kind.is_packet_level()) {
            self.events.borrow_mut().push(ev);
        }
        if abnormal_close {
            self.dump_flight_recorder("abnormal channel close (peer-dead)");
        }
    }

    /// Snapshot of the run log.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    pub fn event_count(&self) -> usize {
        self.events.borrow().len()
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Write the flight-recorder contents to stderr (JSONL) and remember
    /// them in `last_dump`.
    pub fn dump_flight_recorder(&self, why: &str) {
        let snap = self.recorder.borrow().snapshot();
        let total = self.recorder.borrow().total_seen();
        eprintln!(
            "[xrdma-telemetry] flight recorder dump ({why}): last {} of {} events at {}",
            snap.len(),
            total,
            self.world.now()
        );
        let mut line = String::new();
        for ev in &snap {
            line.clear();
            ev.json_into(&mut line);
            eprintln!("[xrdma-telemetry] {line}");
        }
        *self.last_dump.borrow_mut() = Some(snap);
    }

    pub fn last_dump(&self) -> Option<Vec<Event>> {
        self.last_dump.borrow().clone()
    }

    /// Schedule `f(hub)` every `period` of virtual time, starting one
    /// period from now. The tick holds only a weak reference: dropping the
    /// hub (guard) stops the sampler, and a hub outliving its world never
    /// fires. Combined with [`MetricsRegistry::sample_gauges`] this turns
    /// gauges into deterministic time series.
    pub fn start_sampler(self: &Rc<Self>, period: Dur, f: impl Fn(&TelemetryHub) + 'static) {
        fn arm(
            world: &Rc<World>,
            weak: Weak<TelemetryHub>,
            period: Dur,
            f: Rc<dyn Fn(&TelemetryHub)>,
        ) {
            let w2 = world.clone();
            world.schedule_in(period, move || {
                if let Some(hub) = weak.upgrade() {
                    f(&hub);
                    arm(&w2, Rc::downgrade(&hub), period, f);
                }
            });
        }
        arm(&self.world, Rc::downgrade(self), period, Rc::new(f));
    }
}

/// RAII handle for an installed hub.
pub struct HubGuard {
    hub: Rc<TelemetryHub>,
}

impl HubGuard {
    pub fn hub(&self) -> &Rc<TelemetryHub> {
        &self.hub
    }
}

impl std::ops::Deref for HubGuard {
    type Target = TelemetryHub;
    fn deref(&self) -> &TelemetryHub {
        &self.hub
    }
}

impl Drop for HubGuard {
    fn drop(&mut self) {
        xrdma_sim::clear_invariant_observer();
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if let Some(h) = cur.as_ref() {
                if Rc::ptr_eq(h, &self.hub) {
                    *cur = None;
                }
            }
        });
    }
}

/// Is a hub installed on this thread? `tele!` checks this before building
/// the event payload.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Deliver one event to the installed hub, if any. Do not call this from
/// stack code — emit through `tele!` (enforced by the `raw-telemetry-emit`
/// lint rule).
pub fn emit_raw(kind: EventKind) {
    let hub = CURRENT.with(|c| c.borrow().clone());
    if let Some(hub) = hub {
        hub.record(kind);
    }
}

/// Run `f` against the installed hub, if any. For pull-style consumers
/// (the monitor mirroring gauges, xr-stat summaries) — not an emission
/// path.
pub fn with_active<R>(f: impl FnOnce(&TelemetryHub) -> R) -> Option<R> {
    let hub = CURRENT.with(|c| c.borrow().clone());
    hub.map(|h| f(&h))
}
