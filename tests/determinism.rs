//! Whole-stack determinism: identical seeds produce bit-identical runs
//! through every layer (DES kernel → fabric → RNIC → middleware → apps),
//! and different seeds actually differ. This is the property every
//! regression experiment in the bench harness relies on.

use std::rc::Rc;

use xrdma_apps::essd::EssdConfig;
use xrdma_apps::pangu::{Pangu, PanguConfig};
use xrdma_apps::{EssdFrontend, LoadSchedule};
use xrdma_core::XrdmaConfig;
use xrdma_fabric::{Fabric, FabricConfig};
use xrdma_rnic::{CmConfig, ConnManager, RnicConfig};
use xrdma_sim::{Dur, SimRng, World};

/// A digest of everything observable about a run.
#[derive(Debug, PartialEq)]
struct Digest {
    final_time: u64,
    events: u64,
    completed: u64,
    chunk_writes: u64,
    p99_ns: u64,
    fabric_pkts: u64,
    fabric_bytes: u64,
    ecn: u64,
    pauses: u64,
    qp_counts: Vec<usize>,
}

fn run(seed: u64) -> Digest {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), FabricConfig::pod(2, 4, 2), &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    let pangu = Pangu::deploy(
        &fabric,
        &cm,
        PanguConfig {
            block_servers: 2,
            chunk_servers: 4,
            ..Default::default()
        },
        RnicConfig::default(),
        XrdmaConfig::default(),
        &rng,
    );
    world.run_for(Dur::millis(200));
    let essd = EssdFrontend::new(
        &pangu.blocks[0],
        EssdConfig {
            base_interval: Dur::micros(300),
            ..Default::default()
        },
        LoadSchedule::diurnal(Dur::millis(200), 0.3, 1.5),
        rng.fork("essd"),
    );
    essd.run_for(Dur::millis(400));
    world.run_for(Dur::millis(600));
    let c = fabric.stats().snapshot();
    let mut h = xrdma_sim::stats::Histogram::new();
    for b in &pangu.blocks {
        h.merge(&b.latency.borrow());
    }
    Digest {
        final_time: world.now().nanos(),
        events: world.events_executed(),
        completed: essd.completed.get(),
        chunk_writes: pangu.chunk_writes.get(),
        p99_ns: h.percentile(99.0),
        fabric_pkts: c.delivered_pkts,
        fabric_bytes: c.delivered_bytes,
        ecn: c.ecn_marked,
        pauses: c.pause_frames,
        qp_counts: pangu.blocks.iter().map(|b| b.ctx.rnic().qp_count()).collect(),
    }
}

#[test]
fn same_seed_same_universe() {
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b);
    assert!(a.completed > 100, "the run did real work: {a:?}");
}

#[test]
fn different_seed_different_universe() {
    let a = run(1);
    let b = run(2);
    // Structure matches, trajectories differ.
    assert_eq!(a.qp_counts, b.qp_counts);
    assert_ne!(
        (a.events, a.fabric_pkts),
        (b.events, b.fabric_pkts),
        "seeds must actually matter"
    );
}

/// `Rc`-graph teardown: dropping the last user handle frees the world
/// (the fabric↔NIC link is weak in one direction by design). Guards the
/// sweep harness against unbounded memory growth across thousands of runs.
#[test]
fn worlds_are_reclaimed() {
    let world = World::new();
    let rng = SimRng::new(9);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let weak_world = Rc::downgrade(&world);
    drop(fabric);
    drop(world);
    // The world may be kept by queued events only; a fresh world with no
    // components must drop fully.
    assert!(weak_world.upgrade().is_none(), "world leaked");
}
