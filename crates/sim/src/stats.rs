//! Measurement toolkit: log-linear histograms, bucketed time series and
//! counters.
//!
//! Every experiment in the paper reports either a latency distribution
//! (Fig 7), a time series (Figs 3, 8, 10, 11, 12), or a counter (Fig 9,
//! CNP/TX-pause counts). These three types are the common currency between
//! the simulator, the analysis framework and the bench harness.

use serde::Serialize;

/// A log-linear histogram of `u64` values (HDR-histogram style).
///
/// Values below 2^SUB_BITS are recorded exactly; above that, each octave is
/// split into 2^SUB_BITS linear sub-buckets, giving a worst-case relative
/// quantization error of 1/2^SUB_BITS ≈ 1.6 %.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS; // 64 sub-buckets per octave
/// Enough buckets for the full u64 range.
const NBUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB as usize;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = octave - SUB_BITS;
        let sub = (v >> shift) - SUB; // in [0, SUB)
        ((shift as u64 + 1) * SUB + sub) as usize
    }
}

/// The midpoint value a bucket represents (used when reading percentiles).
#[inline]
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let shift = idx / SUB - 1;
        let sub = idx % SUB + SUB;
        // Midpoint of the bucket's range.
        (sub << shift) + (1u64 << shift) / 2
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` observations of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all recorded values (not quantized). This is what lets
    /// per-stage span histograms reconcile with end-to-end latency to the
    /// nanosecond even though percentiles are log-bucketed.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (exact, not quantized).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at percentile `p` in `[0, 100]`, quantized to bucket midpoints
    /// except for the exact min/max endpoints.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min();
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Compact summary for reports.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.total,
            min: self.min(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: self.max,
        }
    }
}

/// Serializable summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HistSummary {
    pub count: u64,
    pub min: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
}

/// How a [`TimeSeries`] combines multiple observations in one bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Sum of observations per bucket (throughput, IOPS, byte counts).
    Sum,
    /// Mean of observations per bucket (latency gauges, occupancy).
    Mean,
    /// Maximum observation per bucket (peak detection).
    Max,
}

/// A time series bucketed over fixed-width windows of virtual time.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    kind: SeriesKind,
    bucket_ns: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Create a series with the given bucket width (in nanoseconds of
    /// virtual time) and combination rule.
    pub fn new(bucket_ns: u64, kind: SeriesKind) -> TimeSeries {
        assert!(bucket_ns > 0);
        TimeSeries {
            kind,
            bucket_ns,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Record observation `v` at virtual instant `t_ns`.
    pub fn record(&mut self, t_ns: u64, v: f64) {
        let idx = (t_ns / self.bucket_ns) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        match self.kind {
            SeriesKind::Sum | SeriesKind::Mean => self.sums[idx] += v,
            SeriesKind::Max => self.sums[idx] = self.sums[idx].max(v),
        }
        self.counts[idx] += 1;
    }

    /// Bucket width in nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Number of buckets (the last recorded bucket index + 1).
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Produce `(bucket_start_seconds, value)` rows. For `Sum` series the
    /// value is the per-bucket sum; for `Mean`, the per-bucket mean (0 for
    /// empty buckets); for `Max`, the per-bucket maximum.
    pub fn rows(&self) -> Vec<(f64, f64)> {
        self.sums
            .iter()
            .zip(self.counts.iter())
            .enumerate()
            .map(|(i, (&s, &c))| {
                let t = (i as u64 * self.bucket_ns) as f64 / 1e9;
                let v = match self.kind {
                    SeriesKind::Sum | SeriesKind::Max => s,
                    SeriesKind::Mean => {
                        if c == 0 {
                            0.0
                        } else {
                            s / c as f64
                        }
                    }
                };
                (t, v)
            })
            .collect()
    }

    /// Per-bucket value converted to a per-second rate (Sum series only).
    pub fn rate_rows(&self) -> Vec<(f64, f64)> {
        assert_eq!(self.kind, SeriesKind::Sum, "rate of a non-Sum series");
        let scale = 1e9 / self.bucket_ns as f64;
        self.rows()
            .into_iter()
            .map(|(t, v)| (t, v * scale))
            .collect()
    }

    /// Mean of the per-bucket values over a closed range of bucket indices.
    pub fn mean_over(&self, from_bucket: usize, to_bucket: usize) -> f64 {
        let rows = self.rows();
        let hi = to_bucket.min(rows.len().saturating_sub(1));
        if from_bucket > hi {
            return 0.0;
        }
        let slice = &rows[from_bucket..=hi];
        slice.iter().map(|&(_, v)| v).sum::<f64>() / slice.len() as f64
    }
}

/// A named monotonic counter.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    pub fn get(&self) -> u64 {
        self.value
    }

    pub fn reset(&mut self) -> u64 {
        std::mem::take(&mut self.value)
    }
}

/// Jain's fairness index over a set of allocations — used by the incast and
/// flow-control experiments to check that fragmentation restores fairness.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_below_sub() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.percentile(100.0), 63);
        assert!((h.mean() - 31.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantization_error_bounded() {
        let mut h = Histogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 123_456_789] {
            h.clear();
            h.record(v);
            let p = h.percentile(50.0);
            let err = (p as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} p={p} err={err}");
        }
    }

    #[test]
    fn histogram_percentiles_ordered() {
        let mut h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(h.min() <= p50 && p50 <= p90 && p90 <= p99 && p99 <= h.max());
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
            all.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.percentile(50.0), all.percentile(50.0));
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_record_n() {
        let mut h = Histogram::new();
        h.record_n(10, 5);
        h.record_n(20, 0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn series_sum_and_rate() {
        let mut ts = TimeSeries::new(1_000_000_000, SeriesKind::Sum); // 1 s buckets
        ts.record(0, 100.0);
        ts.record(500_000_000, 100.0);
        ts.record(1_500_000_000, 300.0);
        let rows = ts.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0.0, 200.0));
        assert_eq!(rows[1], (1.0, 300.0));
        let rates = ts.rate_rows();
        assert_eq!(rates[0].1, 200.0);
    }

    #[test]
    fn series_mean_handles_gaps() {
        let mut ts = TimeSeries::new(100, SeriesKind::Mean);
        ts.record(0, 10.0);
        ts.record(50, 30.0);
        ts.record(250, 5.0);
        let rows = ts.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, 20.0);
        assert_eq!(rows[1].1, 0.0, "empty bucket reads 0");
        assert_eq!(rows[2].1, 5.0);
    }

    #[test]
    fn series_max() {
        let mut ts = TimeSeries::new(100, SeriesKind::Max);
        ts.record(10, 3.0);
        ts.record(20, 7.0);
        ts.record(30, 5.0);
        assert_eq!(ts.rows()[0].1, 7.0);
    }

    #[test]
    fn series_mean_over() {
        let mut ts = TimeSeries::new(100, SeriesKind::Sum);
        for i in 0..10u64 {
            ts.record(i * 100, i as f64);
        }
        assert!((ts.mean_over(0, 9) - 4.5).abs() < 1e-9);
        assert!((ts.mean_over(5, 100) - 7.0).abs() < 1e-9, "clamps hi");
        assert_eq!(ts.mean_over(50, 60), 0.0, "out of range");
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn fairness_index() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[1.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
