//! Fabric assembly: builds the Clos out of switches, ports and cables, and
//! exposes the host-facing attach/send API the RNIC layer uses.

use std::rc::Rc;

use xrdma_sim::{SimRng, World};

use crate::config::FabricConfig;
use crate::packet::{NodeId, Packet};
use crate::port::{Port, PortDest};
use crate::stats::FabricStats;
use crate::switch::Switch;
use crate::topology::{SwitchAddr, Tier, Topology};

/// What a host NIC must implement to receive from the fabric.
pub trait NicSink {
    /// A packet arrived at this host.
    fn deliver(&self, pkt: Packet);
    /// The host's transmit path was PFC-paused (`paused=true`) or resumed.
    /// Default: ignore (the egress port already obeys the pause; this is an
    /// observability hook for the NIC's counters).
    fn pfc_pause(&self, _prio: u8, _paused: bool) {}
}

/// The assembled network.
pub struct Fabric {
    world: Rc<World>,
    cfg: FabricConfig,
    topo: Rc<Topology>,
    stats: Rc<FabricStats>,
    tors: Vec<Rc<Switch>>,
    leaves: Vec<Rc<Switch>>,
    spines: Vec<Rc<Switch>>,
    /// Host NIC egress (uplink) ports, indexed by host.
    host_ports: Vec<Rc<Port>>,
    /// ToR down-ports facing each host, indexed by host (sink attach point).
    down_ports: Vec<Rc<Port>>,
}

impl Fabric {
    /// Build the fabric described by `cfg`. Hosts still need to be attached
    /// via [`Fabric::attach_host`] before they can receive.
    pub fn new(world: Rc<World>, cfg: FabricConfig, rng: &SimRng) -> Rc<Fabric> {
        cfg.validate();
        let topo = Rc::new(Topology::from_config(&cfg));
        let stats = FabricStats::new();

        let mk_switch = |tier: Tier, idx: u32, n_down: usize| {
            Switch::new(
                world.clone(),
                SwitchAddr { tier, idx },
                topo.clone(),
                cfg.ecn,
                cfg.pfc,
                cfg.switch_delay,
                cfg.prop_delay,
                n_down,
                stats.clone(),
                rng.fork(&format!("sw-{tier:?}-{idx}")),
            )
        };

        let tors: Vec<_> = (0..topo.n_tors())
            .map(|i| mk_switch(Tier::Tor, i, cfg.hosts_per_tor as usize))
            .collect();
        let leaves: Vec<_> = (0..topo.n_leaves())
            .map(|i| mk_switch(Tier::Leaf, i, cfg.tors_per_pod as usize))
            .collect();
        let spines: Vec<_> = (0..cfg.spines)
            .map(|i| mk_switch(Tier::Spine, i, topo.n_leaves() as usize))
            .collect();

        // Helper: create one direction of a cable from `src_label` into
        // switch `dst`, returning the new egress port on the sending side.
        let mk_port_into_switch = |label: String, rate: f64, dst: &Rc<Switch>, host_owned: bool| {
            let ingress = dst.reserve_ingress();
            let port = Port::new(
                world.clone(),
                label,
                rate,
                cfg.prop_delay,
                cfg.queue_limit_bytes,
                PortDest::Switch {
                    sw: Rc::downgrade(dst),
                    ingress,
                },
                stats.clone(),
                host_owned,
            );
            dst.set_upstream(ingress, Rc::downgrade(&port));
            port
        };

        // Host <-> ToR cables.
        let mut host_ports = Vec::with_capacity(topo.n_hosts() as usize);
        let mut down_ports = Vec::with_capacity(topo.n_hosts() as usize);
        // xrdma-lint: allow(hot-path-alloc) -- one-time topology construction
        let mut tor_ports: Vec<Vec<Rc<Port>>> = vec![Vec::new(); tors.len()];
        for h in 0..topo.n_hosts() {
            let t = topo.tor_of(NodeId(h)) as usize;
            // Up direction: host NIC egress into the ToR.
            let up = mk_port_into_switch(format!("host{h}->tor{t}"), cfg.link_gbps, &tors[t], true);
            host_ports.push(up);
            // Down direction: ToR egress to the host.
            let down = Port::new(
                world.clone(),
                format!("tor{t}->host{h}"),
                cfg.link_gbps,
                cfg.prop_delay,
                cfg.queue_limit_bytes,
                PortDest::Host {
                    sink: std::cell::RefCell::new(None),
                },
                stats.clone(),
                false,
            );
            down_ports.push(down.clone());
            tor_ports[t].push(down);
        }

        // ToR <-> Leaf cables (each ToR to every leaf in its pod).
        // xrdma-lint: allow(hot-path-alloc) -- one-time topology construction
        let mut leaf_ports: Vec<Vec<Rc<Port>>> = vec![Vec::new(); leaves.len()];
        for (t, tor) in tors.iter().enumerate() {
            let pod = topo.pod_of_tor(t as u32);
            for j in 0..cfg.leaves_per_pod {
                let l = (pod * cfg.leaves_per_pod + j) as usize;
                let up = mk_port_into_switch(
                    format!("tor{t}->leaf{l}"),
                    cfg.uplink_gbps,
                    &leaves[l],
                    false,
                );
                tor_ports[t].push(up);
                let down =
                    mk_port_into_switch(format!("leaf{l}->tor{t}"), cfg.uplink_gbps, tor, false);
                // Leaf down-ports are laid out per-ToR-within-pod.
                leaf_ports[l].push(down);
            }
        }
        // Reorder leaf down ports: they were pushed per (tor, leaf) loop in
        // tor-major order, which is exactly tors_per_pod entries per leaf in
        // ToR order — matching Switch::egress_index's expectation.

        // Leaf <-> Spine cables (every leaf to every spine).
        // xrdma-lint: allow(hot-path-alloc) -- one-time topology construction
        let mut spine_ports: Vec<Vec<Rc<Port>>> = vec![Vec::new(); spines.len()];
        for (l, leaf) in leaves.iter().enumerate() {
            for (s, spine) in spines.iter().enumerate() {
                let up = mk_port_into_switch(
                    format!("leaf{l}->spine{s}"),
                    cfg.uplink_gbps,
                    spine,
                    false,
                );
                leaf_ports[l].push(up);
                let down =
                    mk_port_into_switch(format!("spine{s}->leaf{l}"), cfg.uplink_gbps, leaf, false);
                spine_ports[s].push(down);
            }
        }
        // Spine down-ports were pushed in leaf-major order because the
        // outer loop is over leaves — spine_ports[s][l] faces leaf l. ✓

        for (t, tor) in tors.iter().enumerate() {
            tor.set_ports(std::mem::take(&mut tor_ports[t]));
        }
        for (l, leaf) in leaves.iter().enumerate() {
            leaf.set_ports(std::mem::take(&mut leaf_ports[l]));
        }
        for (s, spine) in spines.iter().enumerate() {
            spine.set_ports(std::mem::take(&mut spine_ports[s]));
        }

        Rc::new(Fabric {
            world,
            cfg,
            topo,
            stats,
            tors,
            leaves,
            spines,
            host_ports,
            down_ports,
        })
    }

    /// Attach a host NIC: packets destined to `node` will be handed to
    /// `sink`, and the returned port is the host's egress (uplink) — the
    /// NIC pushes outbound packets into it.
    pub fn attach_host(&self, node: NodeId, sink: Rc<dyn NicSink>) -> Rc<Port> {
        let i = node.index();
        self.down_ports[i].set_host_sink(&sink);
        self.host_ports[i].set_peer_sink(&sink);
        self.host_ports[i].clone()
    }

    /// Enqueue a packet at its source host's egress port. Returns false if
    /// the NIC egress queue overflowed (counted as a drop).
    pub fn send(&self, pkt: Packet) -> bool {
        let i = pkt.src.index();
        self.host_ports[i].enqueue(pkt, usize::MAX)
    }

    /// The egress port of a host (for direct rate/pause inspection).
    pub fn host_port(&self, node: NodeId) -> Rc<Port> {
        self.host_ports[node.index()].clone()
    }

    pub fn world(&self) -> &Rc<World> {
        &self.world
    }

    pub fn stats(&self) -> &Rc<FabricStats> {
        &self.stats
    }

    pub fn topology(&self) -> &Rc<Topology> {
        &self.topo
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub fn n_hosts(&self) -> u32 {
        self.topo.n_hosts()
    }

    /// Total bytes buffered in all switch queues (buffer-utilization index).
    pub fn buffered_bytes(&self) -> u64 {
        self.tors
            .iter()
            .chain(self.leaves.iter())
            .chain(self.spines.iter())
            .map(|s| s.buffered_bytes())
            .sum()
    }

    /// Access a ToR switch (tests / monitoring).
    pub fn tor(&self, idx: usize) -> Rc<Switch> {
        self.tors[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PRIO_RDMA, PRIO_TCP};
    use std::any::Any;
    use std::cell::RefCell;
    use xrdma_sim::Dur;

    struct Collect {
        world: Rc<World>,
        got: RefCell<Vec<(u64, u64)>>, // (arrival ns, body tag)
        pauses: RefCell<Vec<(u8, bool)>>,
    }
    impl Collect {
        fn new(world: &Rc<World>) -> Rc<Collect> {
            Rc::new(Collect {
                world: world.clone(),
                got: RefCell::new(Vec::new()),
                pauses: RefCell::new(Vec::new()),
            })
        }
    }
    impl NicSink for Collect {
        fn deliver(&self, pkt: Packet) {
            let tag = *pkt.body.downcast::<u64>().unwrap();
            self.got.borrow_mut().push((self.world.now().nanos(), tag));
        }
        fn pfc_pause(&self, prio: u8, paused: bool) {
            self.pauses.borrow_mut().push((prio, paused));
        }
    }

    fn pkt(src: u32, dst: u32, size: u32, tag: u64) -> Packet {
        Packet::new(
            NodeId(src),
            NodeId(dst),
            PRIO_RDMA,
            size,
            (src as u64) << 32 | dst as u64,
            Box::new(tag) as Box<dyn Any>,
        )
    }

    #[test]
    fn two_hosts_same_rack_deliver() {
        let w = World::new();
        let rng = SimRng::new(1);
        let f = Fabric::new(w.clone(), FabricConfig::pair(), &rng);
        let sink = Collect::new(&w);
        f.attach_host(NodeId(1), sink.clone());
        f.attach_host(NodeId(0), Collect::new(&w));
        assert!(f.send(pkt(0, 1, 1000, 42)));
        w.run();
        let got = sink.got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 42);
        // host ser 320 + prop 250 + fwd 500 + tor ser 320 + prop 250 = 1640.
        assert_eq!(got[0].0, 1640);
        assert_eq!(f.stats().snapshot().delivered_pkts, 1);
    }

    #[test]
    fn cross_pod_delivery_traverses_five_switches() {
        let w = World::new();
        let rng = SimRng::new(2);
        let f = Fabric::new(w.clone(), FabricConfig::cluster(2, 2, 2), &rng);
        let n = f.n_hosts();
        assert_eq!(n, 8);
        let sink = Collect::new(&w);
        f.attach_host(NodeId(7), sink.clone());
        assert!(f.send(pkt(0, 7, 1000, 9)));
        w.run();
        assert_eq!(sink.got.borrow().len(), 1);
        // 1 host hop + 5 switch hops of prop delay at least.
        assert!(sink.got.borrow()[0].0 > 6 * 200);
    }

    #[test]
    fn per_flow_in_order_delivery() {
        let w = World::new();
        let rng = SimRng::new(3);
        let f = Fabric::new(w.clone(), FabricConfig::cluster(2, 2, 2), &rng);
        let sink = Collect::new(&w);
        f.attach_host(NodeId(7), sink.clone());
        for i in 0..50 {
            assert!(f.send(pkt(0, 7, 1500, i)));
        }
        w.run();
        let tags: Vec<u64> = sink.got.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn incast_generates_pfc_pauses() {
        let w = World::new();
        let rng = SimRng::new(4);
        let mut cfg = FabricConfig::rack(9);
        cfg.pfc.xoff_bytes = 32 * 1024;
        cfg.pfc.xon_bytes = 16 * 1024;
        let f = Fabric::new(w.clone(), cfg, &rng);
        let sink = Collect::new(&w);
        f.attach_host(NodeId(0), sink.clone());
        // 8 senders blast host 0: the ToR's egress to host 0 backs up and
        // the senders' ingress accounting must trip XOFF.
        for s in 1..9u32 {
            for i in 0..200 {
                f.send(pkt(s, 0, 4096, (s as u64) * 1000 + i));
            }
        }
        w.run();
        let c = f.stats().snapshot();
        assert!(c.pause_frames > 0, "no PFC under incast: {c:?}");
        assert!(c.host_tx_pause > 0, "pauses should land on host NICs");
        assert!(c.resume_frames > 0, "no resume after drain");
        assert_eq!(c.drops, 0, "PFC must keep the RDMA class lossless");
        assert_eq!(c.delivered_pkts, 8 * 200);
        // Every paused sender saw the pause notification.
        assert!(!sink.pauses.borrow().is_empty() || c.host_tx_pause > 0);
    }

    #[test]
    fn ecn_marks_under_congestion() {
        let w = World::new();
        let rng = SimRng::new(5);
        let mut cfg = FabricConfig::rack(5);
        cfg.ecn.kmin_bytes = 8 * 1024;
        cfg.ecn.kmax_bytes = 64 * 1024;
        let f = Fabric::new(w.clone(), cfg, &rng);
        let sink = Collect::new(&w);
        f.attach_host(NodeId(0), sink.clone());
        for s in 1..5u32 {
            for i in 0..100 {
                f.send(pkt(s, 0, 4096, (s as u64) * 1000 + i));
            }
        }
        w.run();
        assert!(f.stats().snapshot().ecn_marked > 0, "congestion must mark");
    }

    #[test]
    fn lossy_class_drops_without_pfc() {
        let w = World::new();
        let rng = SimRng::new(6);
        let mut cfg = FabricConfig::rack(5);
        cfg.queue_limit_bytes = 16 * 1024;
        let f = Fabric::new(w.clone(), cfg, &rng);
        f.attach_host(NodeId(0), Collect::new(&w));
        for s in 1..5u32 {
            for i in 0..100 {
                let mut p = pkt(s, 0, 4096, i);
                p.prio = PRIO_TCP; // lossy class: PFC does not protect it
                p.ecn_capable = false;
                f.send(p);
            }
        }
        w.run();
        assert!(
            f.stats().snapshot().drops > 0,
            "lossy class should tail-drop"
        );
    }

    #[test]
    fn deterministic_same_seed() {
        let run = |seed: u64| {
            let w = World::new();
            let rng = SimRng::new(seed);
            let f = Fabric::new(w.clone(), FabricConfig::cluster(2, 2, 2), &rng);
            let sink = Collect::new(&w);
            f.attach_host(NodeId(7), sink.clone());
            for i in 0..100 {
                f.send(pkt((i % 6) as u32, 7, 2048, i));
            }
            w.run();
            let v = sink.got.borrow().clone();
            v
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn pause_throttles_then_recovers() {
        // A paused sender stops transmitting; after XON it finishes.
        let w = World::new();
        let rng = SimRng::new(8);
        let mut cfg = FabricConfig::rack(3);
        cfg.pfc.xoff_bytes = 16 * 1024;
        cfg.pfc.xon_bytes = 8 * 1024;
        let f = Fabric::new(w.clone(), cfg, &rng);
        let sink = Collect::new(&w);
        f.attach_host(NodeId(0), sink.clone());
        for s in 1..3u32 {
            for i in 0..100 {
                f.send(pkt(s, 0, 4096, (s as u64) * 1000 + i));
            }
        }
        w.run_for(Dur::millis(50));
        assert_eq!(sink.got.borrow().len(), 200, "all traffic eventually lands");
        let host1 = f.host_port(NodeId(1));
        assert!(!host1.is_paused(PRIO_RDMA), "pause cleared at the end");
    }
}
