//! The ping-pong harness behind Figure 7: run `iters` request/response
//! round trips of a given size over any stack and report the half-RTT
//! latency distribution, exactly like `ibv_rc_pingpong` reports.

use std::cell::Cell;
use std::rc::Rc;

use xrdma_core::{XrdmaChannel, XrdmaConfig, XrdmaContext};
use xrdma_fabric::{Fabric, FabricConfig, NodeId};
use xrdma_rnic::{CmConfig, ConnManager, Rnic, RnicConfig};
use xrdma_sim::stats::Histogram;
use xrdma_sim::{Dur, SimRng, World};

use crate::am::AmEndpoint;
use crate::profile::StackProfile;

/// Latency distribution of one ping-pong run.
#[derive(Clone, Debug)]
pub struct PingPongResult {
    pub stack: &'static str,
    pub size: u64,
    /// One-way (half round-trip) latencies, nanoseconds.
    pub latency: Histogram,
}

impl PingPongResult {
    pub fn mean_us(&self) -> f64 {
        self.latency.mean() / 1e3
    }

    pub fn p50_us(&self) -> f64 {
        self.latency.percentile(50.0) as f64 / 1e3
    }

    pub fn p99_us(&self) -> f64 {
        self.latency.percentile(99.0) as f64 / 1e3
    }
}

/// Ping-pong over a generic AM baseline stack.
pub fn pingpong_am(profile: StackProfile, size: u64, iters: u32, seed: u64) -> PingPongResult {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let a_nic = Rnic::new(&fabric, NodeId(0), RnicConfig::default(), rng.fork("a"));
    let b_nic = Rnic::new(&fabric, NodeId(1), RnicConfig::default(), rng.fork("b"));
    let a = AmEndpoint::new(&a_nic, profile, size.max(4096) * 2);
    let b = AmEndpoint::new(&b_nic, profile, size.max(4096) * 2);
    Rnic::connect_pair(&a_nic, &a.qp, &b_nic, &b.qp).expect("fresh QPs wire cleanly");
    a.start();
    b.start();

    // Echo server.
    b.set_on_msg(move |ep, len| {
        ep.send(len);
    });

    // Client: fire the next ping when the pong lands; record half RTT.
    let hist = Rc::new(std::cell::RefCell::new(Histogram::new()));
    let warmup = (iters / 10).max(4);
    let count = Rc::new(Cell::new(0u32));
    let t0 = Rc::new(Cell::new(world.now()));
    {
        let hist = hist.clone();
        let world2 = world.clone();
        let count2 = count.clone();
        let t02 = t0.clone();
        a.set_on_msg(move |ep, len| {
            let n = count2.get() + 1;
            count2.set(n);
            if n > warmup {
                let rtt = world2.now().since(t02.get());
                hist.borrow_mut().record(rtt.as_nanos() / 2);
            }
            if n < iters + warmup {
                t02.set(world2.now());
                ep.send(len);
            }
        });
    }
    t0.set(world.now());
    a.send(size);
    world.run_for(Dur::secs(30));
    assert_eq!(
        count.get(),
        iters + warmup,
        "{}: ping-pong did not complete ({}/{})",
        profile.name,
        count.get(),
        iters + warmup
    );
    let latency = hist.borrow().clone();
    PingPongResult {
        stack: profile.name,
        size,
        latency,
    }
}

/// Ping-pong over the real X-RDMA middleware with a given configuration.
/// `stack` labels the row ("xrdma-BD", "xrdma-reqrsp", …).
pub fn pingpong_xrdma(
    stack: &'static str,
    cfg: XrdmaConfig,
    size: u64,
    iters: u32,
    seed: u64,
) -> PingPongResult {
    let world = World::new();
    let rng = SimRng::new(seed);
    let fabric = Fabric::new(world.clone(), FabricConfig::pair(), &rng);
    let cm = ConnManager::new(world.clone(), CmConfig::default(), rng.fork("cm"));
    let client = XrdmaContext::on_new_node(
        &fabric,
        &cm,
        NodeId(0),
        RnicConfig::default(),
        cfg.clone(),
        &rng,
    );
    let server =
        XrdmaContext::on_new_node(&fabric, &cm, NodeId(1), RnicConfig::default(), cfg, &rng);
    let sch: Rc<std::cell::RefCell<Option<Rc<XrdmaChannel>>>> =
        Rc::new(std::cell::RefCell::new(None));
    let s2 = sch.clone();
    server.listen(7, move |ch| {
        ch.set_on_request(|ch2, msg, token| {
            ch2.respond_size(token, msg.len).ok();
        });
        *s2.borrow_mut() = Some(ch);
    });
    let cch: Rc<std::cell::RefCell<Option<Rc<XrdmaChannel>>>> =
        Rc::new(std::cell::RefCell::new(None));
    let c2 = cch.clone();
    client.connect(NodeId(1), 7, move |r| {
        *c2.borrow_mut() = Some(r.expect("connect"));
    });
    world.run_for(Dur::millis(20));
    let ch = cch.borrow().clone().expect("channel");

    let hist = Rc::new(std::cell::RefCell::new(Histogram::new()));
    let warmup = (iters / 10).max(4);
    let count = Rc::new(Cell::new(0u32));

    fn fire(
        ch: &Rc<XrdmaChannel>,
        world: &Rc<World>,
        hist: &Rc<std::cell::RefCell<Histogram>>,
        count: &Rc<Cell<u32>>,
        size: u64,
        iters: u32,
        warmup: u32,
    ) {
        let t0 = world.now();
        let ch2 = ch.clone();
        let world2 = world.clone();
        let hist2 = hist.clone();
        let count2 = count.clone();
        ch.send_request_size(size, move |_, _resp| {
            let n = count2.get() + 1;
            count2.set(n);
            if n > warmup {
                let rtt = world2.now().since(t0);
                hist2.borrow_mut().record(rtt.as_nanos() / 2);
            }
            if n < iters + warmup {
                fire(&ch2, &world2, &hist2, &count2, size, iters, warmup);
            }
        })
        .expect("send");
    }
    fire(&ch, &world, &hist, &count, size, iters, warmup);
    world.run_for(Dur::secs(30));
    assert_eq!(
        count.get(),
        iters + warmup,
        "{stack}: ping-pong did not complete"
    );
    let latency = hist.borrow().clone();
    PingPongResult {
        stack,
        size,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;

    #[test]
    fn raw_verbs_small_message_latency_sane() {
        let r = pingpong_am(profile::ibv_rc_pingpong(), 64, 50, 1);
        // Half-RTT of a tiny message on the calibrated fabric: 2–7 µs.
        assert!(
            (2.0..7.0).contains(&r.mean_us()),
            "ibv 64B half-rtt {} µs",
            r.mean_us()
        );
    }

    #[test]
    fn stack_ordering_reproduces_fig7() {
        let size = 64;
        let ibv = pingpong_am(profile::ibv_rc_pingpong(), size, 60, 2).mean_us();
        let ucx = pingpong_am(profile::ucx_am_rc(), size, 60, 2).mean_us();
        let lf = pingpong_am(profile::libfabric(), size, 60, 2).mean_us();
        let x = pingpong_am(profile::xio(), size, 60, 2).mean_us();
        let xr = pingpong_xrdma("xrdma-BD", XrdmaConfig::default(), size, 60, 2).mean_us();
        assert!(ibv < xr, "raw verbs is the floor: ibv {ibv} xr {xr}");
        assert!(xr < ucx, "xrdma beats ucx: {xr} vs {ucx}");
        assert!(ucx < lf, "ucx beats libfabric: {ucx} vs {lf}");
        assert!(lf < x, "libfabric beats xio: {lf} vs {x}");
        // X-RDMA within 10% of raw verbs (paper: ≤10% degradation).
        assert!(xr / ibv < 1.12, "xrdma {xr} vs ibv {ibv}");
    }

    #[test]
    fn reqrsp_overhead_2_to_4_percent() {
        let size = 1024;
        let bare = pingpong_xrdma("xrdma-BD", XrdmaConfig::default(), size, 80, 3).mean_us();
        let mut cfg = XrdmaConfig::default();
        cfg.msg_mode = xrdma_core::MsgMode::ReqRsp;
        cfg.trace_sample_mask = 0;
        let traced = pingpong_xrdma("xrdma-reqrsp", cfg, size, 80, 3).mean_us();
        let overhead = traced / bare - 1.0;
        assert!(
            (0.005..0.08).contains(&overhead),
            "req-rsp overhead {overhead:.3} (paper: 2–4 %)"
        );
    }

    #[test]
    fn rendezvous_kicks_in_for_large() {
        let r = pingpong_am(profile::ucx_am_rc(), 64 * 1024, 20, 4);
        // 64 KiB at 25 Gb/s is ~21 µs of wire each way plus rendezvous.
        assert!(r.mean_us() > 20.0, "large {} µs", r.mean_us());
    }
}
